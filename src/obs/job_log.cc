#include "job_log.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "json_util.h"

namespace paichar::obs {

namespace detail {
std::atomic<bool> g_job_log_active{false};
} // namespace detail

namespace {

/** A recorded job plus its global record order (merge tie-breaker). */
struct Recorded
{
    JobRecord rec;
    uint64_t seq;
};

/**
 * Per-thread append buffer, same discipline as the Span buffers: the
 * mutex is uncontended in steady state (only the owner appends) and
 * exists so startJobLog() can clear and collectJobLog() can read
 * buffers of still-live threads without a data race.
 */
struct JobBuffer
{
    std::mutex mu;
    std::vector<Recorded> records;
};

struct JobLogRegistry
{
    std::mutex mu;
    std::vector<std::shared_ptr<JobBuffer>> buffers;
};

JobLogRegistry &
jobLogRegistry()
{
    // Leaked: worker threads may record past static destruction.
    static JobLogRegistry *r = new JobLogRegistry;
    return *r;
}

std::atomic<uint64_t> g_next_job_seq{0};

JobBuffer &
jobBuffer()
{
    thread_local std::shared_ptr<JobBuffer> buf = [] {
        auto b = std::make_shared<JobBuffer>();
        JobLogRegistry &r = jobLogRegistry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
appendField(std::string &out, const char *key, const std::string &v,
            bool first = false)
{
    if (!first)
        out += ',';
    out += '"';
    out += key;
    out += "\":\"";
    appendJsonEscaped(out, v);
    out += '"';
}

template <typename Num>
void
appendField(std::string &out, const char *key, Num v)
{
    out += ",\"";
    out += key;
    out += "\":";
    appendJsonNumber(out, v);
}

void
appendField(std::string &out, const char *key, bool v)
{
    out += ",\"";
    out += key;
    out += "\":";
    out += v ? "true" : "false";
}

} // namespace

void
startJobLog()
{
    JobLogRegistry &r = jobLogRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &buf : r.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        buf->records.clear();
    }
    g_next_job_seq.store(0, std::memory_order_relaxed);
    detail::g_job_log_active.store(true, std::memory_order_relaxed);
}

void
stopJobLog()
{
    detail::g_job_log_active.store(false, std::memory_order_relaxed);
}

void
recordJob(JobRecord rec)
{
    if (!jobLogActive())
        return;
    uint64_t seq =
        g_next_job_seq.fetch_add(1, std::memory_order_relaxed);
    JobBuffer &buf = jobBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.records.push_back(Recorded{std::move(rec), seq});
}

std::vector<JobRecord>
collectJobLog()
{
    std::vector<Recorded> merged;
    {
        JobLogRegistry &r = jobLogRegistry();
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto &buf : r.buffers) {
            std::lock_guard<std::mutex> buf_lock(buf->mu);
            merged.insert(merged.end(), buf->records.begin(),
                          buf->records.end());
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Recorded &a, const Recorded &b) {
                  if (a.rec.job_id != b.rec.job_id)
                      return a.rec.job_id < b.rec.job_id;
                  return a.seq < b.seq;
              });
    std::vector<JobRecord> out;
    out.reserve(merged.size());
    for (Recorded &m : merged)
        out.push_back(std::move(m.rec));
    return out;
}

std::string
renderJobLogJsonl(const std::vector<JobRecord> &records)
{
    std::string out;
    out.reserve(records.size() * 512);
    for (const JobRecord &r : records) {
        out += "{\"schema\":\"";
        out += kJobLogSchema;
        out += '"';
        appendField(out, "source", r.source);
        appendField(out, "job_id", r.job_id);
        appendField(out, "name", r.name);
        appendField(out, "status", r.status);
        appendField(out, "arch", r.arch);
        appendField(out, "executed_arch", r.executed_arch);
        appendField(out, "ported", r.ported);
        appendField(out, "num_cnodes",
                    static_cast<int64_t>(r.num_cnodes));
        appendField(out, "gpus", static_cast<int64_t>(r.gpus));
        appendField(out, "server", static_cast<int64_t>(r.server));
        appendField(out, "num_steps", r.num_steps);
        appendField(out, "placement_attempts", r.placement_attempts);
        appendField(out, "submit_s", r.submit_s);
        appendField(out, "start_s", r.start_s);
        appendField(out, "finish_s", r.finish_s);
        // Derived, re-emitted for jq/human use; the parser ignores
        // them and recomputes, so round-trips stay byte-exact.
        appendField(out, "queue_s", r.queueSeconds());
        appendField(out, "run_s", r.runSeconds());
        appendField(out, "pred_td_s", r.pred_td_s);
        appendField(out, "pred_tc_flops_s", r.pred_tc_flops_s);
        appendField(out, "pred_tc_mem_s", r.pred_tc_mem_s);
        appendField(out, "pred_tw_s", r.pred_tw_s);
        appendField(out, "pred_step_s", r.pred_step_s);
        appendField(out, "sim_td_s", r.sim_td_s);
        appendField(out, "sim_tc_s", r.sim_tc_s);
        appendField(out, "sim_tw_s", r.sim_tw_s);
        appendField(out, "sim_step_s", r.sim_step_s);
        appendField(out, "skew_pct", r.skewPct());
        out += "}\n";
    }
    return out;
}

namespace {

/** Cursor over one JSONL line during parsing. */
struct Scanner
{
    const char *p;
    const char *end;

    void
    skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    /** Parse a quoted JSON string (cursor on the opening quote). */
    bool
    parseString(std::string *out)
    {
        skipWs();
        if (p >= end || *p != '"')
            return false;
        ++p;
        out->clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (p >= end)
                return false;
            char e = *p++;
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'n': *out += '\n'; break;
              case 't': *out += '\t'; break;
              case 'r': *out += '\r'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'u': {
                  if (end - p < 4)
                      return false;
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = *p++;
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return false;
                  }
                  // UTF-8 encode (BMP only; surrogates emitted by our
                  // writer never occur -- it escapes bytes < 0x20).
                  if (cp < 0x80) {
                      *out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      *out += static_cast<char>(0xC0 | (cp >> 6));
                      *out +=
                          static_cast<char>(0x80 | (cp & 0x3F));
                  } else {
                      *out += static_cast<char>(0xE0 | (cp >> 12));
                      *out += static_cast<char>(0x80 |
                                                ((cp >> 6) & 0x3F));
                      *out +=
                          static_cast<char>(0x80 | (cp & 0x3F));
                  }
                  break;
              }
              default:
                return false;
            }
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    /** Parse a JSON number into a double. */
    bool
    parseNumber(double *out)
    {
        skipWs();
        auto [ptr, ec] = std::from_chars(p, end, *out);
        if (ec != std::errc() || ptr == p)
            return false;
        p = ptr;
        return true;
    }

    bool
    parseLiteral(std::string_view lit)
    {
        skipWs();
        if (static_cast<size_t>(end - p) < lit.size() ||
            std::string_view(p, lit.size()) != lit)
            return false;
        p += lit.size();
        return true;
    }
};

/** Assign one parsed key/value into @p rec; unknown keys ignored. */
void
assignField(JobRecord &rec, const std::string &key,
            const std::string &sval, double nval, bool bval,
            char kind)
{
    if (kind == 's') {
        if (key == "source")
            rec.source = sval;
        else if (key == "name")
            rec.name = sval;
        else if (key == "status")
            rec.status = sval;
        else if (key == "arch")
            rec.arch = sval;
        else if (key == "executed_arch")
            rec.executed_arch = sval;
        return;
    }
    if (kind == 'b') {
        if (key == "ported")
            rec.ported = bval;
        return;
    }
    if (key == "job_id")
        rec.job_id = static_cast<int64_t>(nval);
    else if (key == "num_cnodes")
        rec.num_cnodes = static_cast<int>(nval);
    else if (key == "gpus")
        rec.gpus = static_cast<int>(nval);
    else if (key == "server")
        rec.server = static_cast<int>(nval);
    else if (key == "num_steps")
        rec.num_steps = static_cast<int64_t>(nval);
    else if (key == "placement_attempts")
        rec.placement_attempts = static_cast<int64_t>(nval);
    else if (key == "submit_s")
        rec.submit_s = nval;
    else if (key == "start_s")
        rec.start_s = nval;
    else if (key == "finish_s")
        rec.finish_s = nval;
    else if (key == "pred_td_s")
        rec.pred_td_s = nval;
    else if (key == "pred_tc_flops_s")
        rec.pred_tc_flops_s = nval;
    else if (key == "pred_tc_mem_s")
        rec.pred_tc_mem_s = nval;
    else if (key == "pred_tw_s")
        rec.pred_tw_s = nval;
    else if (key == "pred_step_s")
        rec.pred_step_s = nval;
    else if (key == "sim_td_s")
        rec.sim_td_s = nval;
    else if (key == "sim_tc_s")
        rec.sim_tc_s = nval;
    else if (key == "sim_tw_s")
        rec.sim_tw_s = nval;
    else if (key == "sim_step_s")
        rec.sim_step_s = nval;
    // queue_s / run_s / skew_pct are derived; recomputed on render.
}

JobLogParse
failParse(size_t line_no, const std::string &what)
{
    JobLogParse r;
    r.ok = false;
    r.error = "line " + std::to_string(line_no) + ": " + what;
    return r;
}

} // namespace

JobLogParse
parseJobLogJsonl(std::string_view text)
{
    JobLogParse result;
    size_t line_no = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, nl == std::string_view::npos ? std::string_view::npos
                                              : nl - pos);
        pos = nl == std::string_view::npos ? text.size() : nl + 1;
        ++line_no;
        // Skip blank (or whitespace-only) lines.
        if (line.find_first_not_of(" \t\r") == std::string_view::npos)
            continue;

        Scanner sc{line.data(), line.data() + line.size()};
        if (!sc.consume('{'))
            return failParse(line_no, "expected a JSON object");
        JobRecord rec;
        bool saw_schema = false;
        bool first = true;
        while (true) {
            if (sc.consume('}'))
                break;
            if (!first && !sc.consume(','))
                return failParse(line_no, "expected ',' or '}'");
            first = false;
            std::string key;
            if (!sc.parseString(&key))
                return failParse(line_no, "expected a key string");
            if (!sc.consume(':'))
                return failParse(line_no, "expected ':' after key");
            sc.skipWs();
            if (sc.p < sc.end && *sc.p == '"') {
                std::string sval;
                if (!sc.parseString(&sval))
                    return failParse(line_no, "bad string value");
                if (key == "schema") {
                    if (sval != kJobLogSchema) {
                        return failParse(
                            line_no, "unsupported schema '" + sval +
                                         "' (expected " +
                                         kJobLogSchema + ")");
                    }
                    saw_schema = true;
                } else {
                    assignField(rec, key, sval, 0.0, false, 's');
                }
            } else if (sc.parseLiteral("true")) {
                assignField(rec, key, {}, 0.0, true, 'b');
            } else if (sc.parseLiteral("false")) {
                assignField(rec, key, {}, 0.0, false, 'b');
            } else if (sc.parseLiteral("null")) {
                // ignored
            } else {
                double nval = 0.0;
                if (!sc.parseNumber(&nval))
                    return failParse(line_no, "bad value for key '" +
                                                  key + "'");
                assignField(rec, key, {}, nval, false, 'n');
            }
        }
        sc.skipWs();
        if (sc.p != sc.end)
            return failParse(line_no,
                             "trailing bytes after the object");
        if (!saw_schema)
            return failParse(line_no, "record has no schema field");
        result.records.push_back(std::move(rec));
    }
    return result;
}

std::string
renderJobChromeTrace(const std::vector<JobRecord> &records)
{
    // Track ids: clustersim records track their first server;
    // everything else (testbed, unplaced) shares track 0.
    auto trackOf = [](const JobRecord &r) {
        return r.server >= 0 ? r.server : 0;
    };

    // Name each used track once, in tid order.
    std::map<int, const JobRecord *> tracks;
    for (const JobRecord &r : records) {
        if (r.status != "completed")
            continue;
        tracks.emplace(trackOf(r), &r);
    }

    std::string out;
    out.reserve(128 + records.size() * 400);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[tid, rec] : tracks) {
        out += first ? "" : ",";
        first = false;
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":";
        appendJsonNumber(out, static_cast<int64_t>(tid));
        out += ",\"args\":{\"name\":\"";
        if (rec->server >= 0) {
            out += "server-";
            appendJsonNumber(out, static_cast<int64_t>(tid));
        } else {
            appendJsonEscaped(out, rec->source.empty()
                                       ? std::string("worker")
                                       : rec->source);
        }
        out += "\"}}";
    }

    auto appendEvent = [&](const std::string &name, int tid,
                           double start_s, double dur_s,
                           const std::string &args_json) {
        out += first ? "" : ",";
        first = false;
        out += "{\"name\":\"";
        appendJsonEscaped(out, name);
        out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        appendJsonNumber(out, static_cast<int64_t>(tid));
        out += ",\"ts\":";
        appendJsonNumber(out, start_s * 1e6);
        out += ",\"dur\":";
        appendJsonNumber(out, dur_s * 1e6);
        if (!args_json.empty()) {
            out += ",\"args\":";
            out += args_json;
        }
        out += '}';
    };

    for (const JobRecord &r : records) {
        if (r.status != "completed")
            continue;
        int tid = trackOf(r);
        double run = r.runSeconds();

        std::string label = r.name.empty()
                                ? "job " + std::to_string(r.job_id)
                                : r.name;
        std::string args = "{\"arch\":\"" + jsonEscape(r.arch) +
                           "\",\"executed_arch\":\"" +
                           jsonEscape(r.executed_arch) + "\"";
        args += ",\"queue_s\":";
        appendJsonNumber(args, r.queueSeconds());
        args += ",\"num_steps\":";
        appendJsonNumber(args, r.num_steps);
        args += ",\"skew_pct\":";
        appendJsonNumber(args, r.skewPct());
        args += '}';
        appendEvent(label, tid, r.start_s, run, args);

        // Phase slices nested inside the job span, scaled to the
        // simulated (fallback: predicted) per-step proportions.
        double td = r.sim_td_s, tc = r.sim_tc_s, tw = r.sim_tw_s;
        double sum = td + tc + tw;
        if (sum <= 0.0) {
            td = r.pred_td_s;
            tc = r.pred_tc_flops_s + r.pred_tc_mem_s;
            tw = r.pred_tw_s;
            sum = td + tc + tw;
        }
        if (sum > 0.0 && run > 0.0) {
            double cursor = r.start_s;
            const struct
            {
                const char *name;
                double share;
            } phases[] = {{"phase.Td", td / sum},
                          {"phase.Tc", tc / sum},
                          {"phase.Tw", tw / sum}};
            for (const auto &ph : phases) {
                double dur = run * ph.share;
                appendEvent(ph.name, tid, cursor, dur, {});
                cursor += dur;
            }
        }
    }
    out += "]}\n";
    return out;
}

} // namespace paichar::obs
