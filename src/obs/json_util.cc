#include "json_util.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace paichar::obs {

void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    appendJsonEscaped(out, s);
    return out;
}

void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

void
appendJsonNumber(std::string &out, int64_t v)
{
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

} // namespace paichar::obs
