#include "timeline.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "analyze.h"
#include "json_util.h"

namespace paichar::obs {

namespace detail {
std::atomic<bool> g_timeline_active{false};
} // namespace detail

namespace {

enum ProbeKind
{
    kLevel = 0,
    kRate = 1,
    kQuantile = 2,
};

const char *
kindName(int kind)
{
    switch (kind) {
    case kLevel:
        return "level";
    case kRate:
        return "rate";
    default:
        return "quantile";
    }
}

/** Grow-to-fit printf into a std::string (same idiom as export.cc). */
std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[160];
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(copy);
        return {};
    }
    if (static_cast<size_t>(n) < sizeof(buf)) {
        va_end(copy);
        return std::string(buf, static_cast<size_t>(n));
    }
    std::string big(static_cast<size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, copy);
    va_end(copy);
    big.resize(static_cast<size_t>(n));
    return big;
}

} // namespace

double
nearestRankQuantile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    auto rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<size_t>(rank, 1, n);
    return samples[rank - 1];
}

struct Timeline::Slot
{
    int kind = kLevel;
    /** First window this probe participates in (rates/quantiles). */
    int64_t start_window = 0;
    /** True once a level value has been emitted at least once. */
    bool level_emitted = false;
    Level level;
    Rate rate;
    Quantile quantile;
};

Timeline::Timeline(double interval_s) : interval_(interval_s)
{
    if (!std::isfinite(interval_s) || interval_s <= 0.0)
        throw std::invalid_argument(
            "timeline interval must be a positive finite number of "
            "simulated seconds");
}

Timeline::~Timeline() = default;

Timeline::Slot &
Timeline::slot(std::string_view name, int kind)
{
    auto it = slots_.find(name);
    if (it == slots_.end()) {
        auto inserted = slots_.emplace(std::string(name),
                                       std::make_unique<Slot>());
        it = inserted.first;
        it->second->kind = kind;
        it->second->start_window = next_window_;
    } else if (it->second->kind != kind) {
        throw std::logic_error(
            "timeline probe '" + std::string(name) +
            "' already registered as a " + kindName(it->second->kind) +
            ", requested as a " + kindName(kind));
    }
    return *it->second;
}

Timeline::Level &
Timeline::level(std::string_view name)
{
    return slot(name, kLevel).level;
}

Timeline::Rate &
Timeline::rate(std::string_view name)
{
    return slot(name, kRate).rate;
}

Timeline::Quantile &
Timeline::quantile(std::string_view name)
{
    return slot(name, kQuantile).quantile;
}

void
Timeline::closeWindow()
{
    double end = windowEnd();
    for (auto &[name, s] : slots_) {
        switch (s->kind) {
        case kLevel: {
            if (!s->level.seen_.load(std::memory_order_relaxed))
                break;
            double v = std::bit_cast<double>(
                s->level.bits_.load(std::memory_order_relaxed));
            rows_.push_back({end, name, v});
            s->level_emitted = true;
            break;
        }
        case kRate: {
            if (next_window_ < s->start_window)
                break;
            double v = std::bit_cast<double>(
                s->rate.bits_.load(std::memory_order_relaxed));
            s->rate.bits_.store(0, std::memory_order_relaxed);
            rows_.push_back({end, name, v});
            break;
        }
        default: {
            if (next_window_ < s->start_window)
                break;
            auto &samples = s->quantile.samples_;
            rows_.push_back({end, name + ".count",
                             static_cast<double>(samples.size())});
            if (!samples.empty()) {
                rows_.push_back(
                    {end, name + ".p50",
                     nearestRankQuantile(samples, 0.50)});
                rows_.push_back(
                    {end, name + ".p99",
                     nearestRankQuantile(samples, 0.99)});
            }
            samples.clear();
            break;
        }
        }
    }
    ++next_window_;
    touched_ = false;
}

void
Timeline::advanceTo(double t)
{
    if (finalized_)
        return;
    while (windowEnd() <= t)
        closeWindow();
    if (t > windowStart())
        touched_ = true;
}

void
Timeline::finalize()
{
    if (finalized_)
        return;
    bool pending = touched_;
    for (const auto &[name, s] : slots_) {
        (void)name;
        if (pending)
            break;
        switch (s->kind) {
        case kLevel:
            pending = s->level.seen_.load(std::memory_order_relaxed) &&
                      !s->level_emitted;
            break;
        case kRate:
            pending = std::bit_cast<double>(s->rate.bits_.load(
                          std::memory_order_relaxed)) != 0.0;
            break;
        default:
            pending = !s->quantile.samples_.empty();
            break;
        }
    }
    if (pending)
        closeWindow();
    finalized_ = true;
}

std::string
Timeline::renderCsv() const
{
    std::string out = "# paichar timeline v1 interval_s ";
    appendJsonNumber(out, interval_);
    out += "\nend_s,series,value\n";
    for (const auto &row : rows_) {
        appendJsonNumber(out, row.end_s);
        out += ',';
        out += row.series;
        out += ',';
        appendJsonNumber(out, row.value);
        out += '\n';
    }
    return out;
}

std::string
Timeline::renderJson() const
{
    // Group rows by series, preserving the (already sorted) time
    // order within each.
    std::map<std::string, std::vector<const TimelineRow *>> by_series;
    for (const auto &row : rows_)
        by_series[row.series].push_back(&row);

    std::string out = "{\"schema\":\"";
    out += kTimelineSchema;
    out += "\",\"interval_s\":";
    appendJsonNumber(out, interval_);
    out += ",\"series\":[";
    bool first_series = true;
    for (const auto &[name, points] : by_series) {
        if (!first_series)
            out += ',';
        first_series = false;
        out += "{\"name\":\"";
        appendJsonEscaped(out, name);
        out += "\",\"points\":[";
        for (size_t i = 0; i < points.size(); ++i) {
            if (i)
                out += ',';
            out += '[';
            appendJsonNumber(out, points[i]->end_s);
            out += ',';
            appendJsonNumber(out, points[i]->value);
            out += ']';
        }
        out += "]}";
    }
    out += "]}\n";
    return out;
}

// ---------------------------------------------------------------------------
// Process-wide lifecycle
// ---------------------------------------------------------------------------

namespace {

/** Owned by the driver thread; guarded by the lifecycle contract,
 * not a lock (start/stop bracket a run like the job log). */
Timeline *g_timeline = nullptr;
std::atomic<uint64_t> g_timeline_generation{0};

} // namespace

void
startTimeline(double interval_s)
{
    // Construct first so a bad interval throws without disturbing
    // any previous timeline.
    auto *fresh = new Timeline(interval_s);
    delete g_timeline;
    g_timeline = fresh;
    g_timeline_generation.fetch_add(1, std::memory_order_relaxed);
    detail::g_timeline_active.store(true, std::memory_order_relaxed);
}

void
stopTimeline()
{
    detail::g_timeline_active.store(false, std::memory_order_relaxed);
    if (g_timeline)
        g_timeline->finalize();
}

Timeline *
timeline()
{
    return g_timeline;
}

uint64_t
timelineGeneration()
{
    return g_timeline_generation.load(std::memory_order_relaxed);
}

std::string
renderTimelineCsv()
{
    return g_timeline ? g_timeline->renderCsv() : std::string();
}

std::string
renderTimelineJson()
{
    return g_timeline ? g_timeline->renderJson() : std::string();
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

namespace {

bool
parseDouble(std::string_view tok, double &out)
{
    const char *first = tok.data();
    const char *last = tok.data() + tok.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

/** An ASCII sparkline over @p points, min-max normalized. */
std::string
sparkline(const std::vector<std::pair<double, double>> &points,
          size_t width)
{
    static constexpr char kRamp[] = ".:-=+*#%@";
    constexpr size_t kLevels = sizeof(kRamp) - 1;
    if (points.empty())
        return {};
    width = std::min(width, points.size());
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto &[t, v] : points) {
        (void)t;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    out.reserve(width);
    for (size_t col = 0; col < width; ++col) {
        // Mean of the points bucketed into this column.
        size_t begin = col * points.size() / width;
        size_t end = (col + 1) * points.size() / width;
        end = std::max(end, begin + 1);
        double sum = 0.0;
        for (size_t i = begin; i < end; ++i)
            sum += points[i].second;
        double v = sum / static_cast<double>(end - begin);
        size_t lvl = kLevels / 2;
        if (hi > lo) {
            lvl = static_cast<size_t>((v - lo) / (hi - lo) *
                                      static_cast<double>(kLevels));
            lvl = std::min(lvl, kLevels - 1);
        }
        out += kRamp[lvl];
    }
    return out;
}

} // namespace

TimelineData
loadTimelineCsv(std::string_view text)
{
    TimelineData data;
    size_t pos = 0;
    size_t line_no = 0;
    bool saw_magic = false;
    bool saw_header = false;
    auto fail = [&](const std::string &what) {
        data.ok = false;
        data.error =
            "line " + std::to_string(line_no) + ": " + what;
        return data;
    };
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            constexpr std::string_view kMagic = "# paichar timeline ";
            if (line.substr(0, kMagic.size()) == kMagic) {
                size_t key = line.find("interval_s ");
                if (key == std::string_view::npos ||
                    !parseDouble(line.substr(key + 11),
                                 data.interval_s))
                    return fail("malformed timeline header");
                saw_magic = true;
            }
            continue;
        }
        if (!saw_magic)
            return fail("not a paichar timeline file (missing '# "
                        "paichar timeline' header)");
        if (!saw_header) {
            if (line != "end_s,series,value")
                return fail("expected 'end_s,series,value' header");
            saw_header = true;
            continue;
        }
        size_t c1 = line.find(',');
        size_t c2 = c1 == std::string_view::npos
                        ? std::string_view::npos
                        : line.find(',', c1 + 1);
        if (c2 == std::string_view::npos)
            return fail("expected 3 comma-separated fields");
        double end_s = 0.0;
        double value = 0.0;
        if (!parseDouble(line.substr(0, c1), end_s))
            return fail("bad end_s value");
        if (!parseDouble(line.substr(c2 + 1), value))
            return fail("bad sample value");
        std::string series(line.substr(c1 + 1, c2 - c1 - 1));
        if (series.empty())
            return fail("empty series name");
        data.series[series].emplace_back(end_s, value);
    }
    if (!saw_magic) {
        data.ok = false;
        data.error = "not a paichar timeline file (missing '# "
                     "paichar timeline' header)";
    } else if (!saw_header) {
        data.ok = false;
        data.error = "truncated timeline file (missing "
                     "'end_s,series,value' header)";
    }
    return data;
}

std::string
renderTimelineReport(const TimelineData &data)
{
    size_t rows = 0;
    for (const auto &[name, points] : data.series) {
        (void)name;
        rows += points.size();
    }
    std::string out = format(
        "# paichar obs timeline (interval %gs, %zu series, %zu "
        "rows)\n",
        data.interval_s, data.series.size(), rows);
    if (data.series.empty())
        return out;
    size_t name_w = 6;
    for (const auto &[name, points] : data.series) {
        (void)points;
        name_w = std::max(name_w, name.size());
    }
    out += format("%-*s %6s %12s %12s %12s %12s  %s\n",
                  static_cast<int>(name_w), "series", "rows", "mean",
                  "min", "max", "last", "spark");
    for (const auto &[name, points] : data.series) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        double sum = 0.0;
        for (const auto &[t, v] : points) {
            (void)t;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
            sum += v;
        }
        double mean = sum / static_cast<double>(points.size());
        out += format("%-*s %6zu %12.4g %12.4g %12.4g %12.4g  %s\n",
                      static_cast<int>(name_w), name.c_str(),
                      points.size(), mean, lo, hi,
                      points.back().second,
                      sparkline(points, 24).c_str());
    }
    return out;
}

RunData
timelineScalars(const TimelineData &data)
{
    RunData run;
    run.kind = RunData::Kind::Metrics;
    for (const auto &[name, points] : data.series) {
        if (points.empty())
            continue;
        double hi = -std::numeric_limits<double>::infinity();
        double sum = 0.0;
        for (const auto &[t, v] : points) {
            (void)t;
            hi = std::max(hi, v);
            sum += v;
        }
        run.scalars[name + ".mean"] =
            sum / static_cast<double>(points.size());
        run.scalars[name + ".max"] = hi;
        run.scalars[name + ".last"] = points.back().second;
        run.scalars[name + ".rows"] =
            static_cast<double>(points.size());
    }
    return run;
}

} // namespace paichar::obs
