/**
 * @file
 * Differential analytical-vs-simulator oracle.
 *
 * The paper's validation experiment (Sec V, Fig 12) shows the simple
 * non-overlap model Ttotal = Td + Tc + Tw tracking measured step time
 * within <10%. Our reproduction replaces the testbed measurements
 * with the discrete-event simulator, so the analytical model
 * (core/analytical_model) and the simulator (sim + testbed) are two
 * *independent implementations of the same physics* — this oracle
 * holds them to the paper's tolerance against each other over
 * generated job populations, continuously.
 *
 * Alignment of the two paths (both sides at a uniform efficiency,
 * zero kernel-launch overhead):
 *  - ring_aware on: the simulator schedules real 2(n-1)-phase ring
 *    collectives, so the analytical side must charge the textbook
 *    2(n-1)/n factor rather than the paper's plain Sw/B;
 *  - PCIe contention mirrored per architecture: the simulator shares
 *    one PCIe root only for 1wng (elsewhere contention is folded into
 *    measured efficiencies, Sec IV), so the analytical penalty is
 *    enabled exactly for 1wng.
 *
 * Documented, asserted exceptions (see GenRanges::differential and
 * the differential test suite):
 *  - AllReduce-Cluster beyond two servers: the hierarchical NIC ring
 *    charges 2(s-1)/s buffers per NIC vs the model's single buffer —
 *    up to 2x on the dominant Ethernet leg by design.
 *  - PEARL: the sparse all-to-all spreads each GPU's share across all
 *    NVLink mesh links while the model charges a 1/n share on one
 *    link, and its dense ring is charged without the ring factor;
 *    bounded, asserted separately.
 */

#ifndef PAICHAR_TESTKIT_DIFFERENTIAL_H
#define PAICHAR_TESTKIT_DIFFERENTIAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/parallel.h"
#include "testkit/gen.h"

namespace paichar::testkit {

/** Oracle configuration. */
struct DiffOptions
{
    /** Hardware both paths model. */
    hw::ClusterSpec cluster = hw::paiCluster();
    /** Uniform derate applied on both paths. */
    double efficiency = 0.7;
    /** Allowed relative disagreement (Fig 12's <10%). */
    double tolerance = 0.10;
    /** Job population (defaults to the sim-agreement regime). */
    GenRanges ranges = GenRanges::differential();
};

/** One compared job. */
struct DiffCase
{
    uint64_t seed = 0;
    workload::TrainingJob job;
    /** Analytical non-overlap step time. */
    double analytical = 0.0;
    /** Event-driven simulated step time. */
    double simulated = 0.0;
    /** |analytical - simulated| / simulated (0 when both ~0). */
    double rel_error = 0.0;
};

/** Runs generated jobs through both paths and compares step times. */
class DifferentialOracle
{
  public:
    explicit DifferentialOracle(DiffOptions opts = DiffOptions{});

    /**
     * Compare one job. @p seed only parameterizes the op-graph
     * structure (totals are pinned to the job's features either way)
     * and is echoed into the result.
     */
    DiffCase evaluate(const workload::TrainingJob &job,
                      uint64_t seed) const;

    /** evaluate() on the generated job for @p seed. */
    DiffCase evaluateSeed(uint64_t seed) const;

    /** Population summary. */
    struct Report
    {
        int count = 0;
        /** Cases beyond tolerance. */
        int violations = 0;
        double mean_rel_error = 0.0;
        /** The worst offender (largest rel_error). */
        DiffCase worst;
    };

    /**
     * Compare @p count jobs generated from consecutive seeds, fanning
     * out over @p pool (nullptr = serial; results are identical for
     * every thread count).
     */
    Report run(uint64_t base_seed, int count,
               runtime::ThreadPool *pool = runtime::globalPool()) const;

    /**
     * Failure report for a beyond-tolerance case: shrinks the job to
     * a minimal counterexample and renders seed, CSV rows and a
     * single-seed reproducer command.
     */
    std::string explain(const DiffCase &c) const;

    const DiffOptions &options() const { return opts_; }

  private:
    DiffOptions opts_;
    JobGenerator gen_;
};

} // namespace paichar::testkit

#endif // PAICHAR_TESTKIT_DIFFERENTIAL_H
