#include "fleet_oracle.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "stats/rng.h"
#include "workload/model_zoo.h"

namespace paichar::testkit {

using inference::Batching;
using inference::FleetConfig;
using inference::FleetResult;
using inference::FleetSimulator;
using inference::InferenceWorkload;
using inference::ModelLoad;
using inference::RequestRecord;
using inference::Routing;
using inference::ServingConfig;
using inference::ServingSimulator;

namespace {

/** Slack for accumulated floating-point time sums. */
constexpr double kEps = 1e-9;

std::string
fail(const std::string &what)
{
    return what;
}

} // namespace

std::optional<std::string>
checkFleetInvariants(const FleetConfig &cfg,
                     const std::vector<ModelLoad> &models,
                     const FleetResult &r)
{
    if (r.requests.empty())
        return fail("oracle needs record_requests = true (no "
                    "per-request log in the result)");

    // --- Request conservation ------------------------------------
    if (r.offered != r.admitted + r.rejected)
        return fail("conservation: offered != admitted + rejected");
    if (r.completed != r.admitted)
        return fail("conservation: completed != admitted (" +
                    std::to_string(r.completed) + " vs " +
                    std::to_string(r.admitted) + ")");
    if (static_cast<int64_t>(r.requests.size()) != r.offered)
        return fail("conservation: request log size != offered");
    if (cfg.admit_queue == 0 && r.rejected != 0)
        return fail("conservation: rejections without admission "
                    "control");

    int64_t rejected_seen = 0;
    for (size_t i = 0; i < r.requests.size(); ++i) {
        const RequestRecord &rec = r.requests[i];
        std::string tag = "request " + std::to_string(i) + ": ";
        if (rec.rejected) {
            ++rejected_seen;
            if (rec.completion != 0.0)
                return fail(tag + "rejected yet completed");
            continue;
        }
        // --- Causality -------------------------------------------
        if (rec.server < 0 ||
            rec.server >= static_cast<int>(r.servers.size()))
            return fail(tag + "served by out-of-range server " +
                        std::to_string(rec.server));
        if (rec.start + kEps < rec.arrival)
            return fail(tag + "starts before it arrives");
        if (rec.completion < rec.start)
            return fail(tag + "completes before it starts");
        if (rec.batch < 1 || rec.batch > cfg.max_batch)
            return fail(tag + "batch " + std::to_string(rec.batch) +
                        " outside [1, max_batch]");
        if (rec.model < 0 ||
            rec.model >= static_cast<int>(models.size()))
            return fail(tag + "unknown model " +
                        std::to_string(rec.model));
    }
    if (rejected_seen != r.rejected)
        return fail("conservation: logged rejections != counted (" +
                    std::to_string(rejected_seen) + " vs " +
                    std::to_string(r.rejected) + ")");

    // --- Per-server capacity -------------------------------------
    int64_t items_sum = 0;
    for (size_t s = 0; s < r.servers.size(); ++s) {
        items_sum += r.servers[s].items;
        if (r.servers[s].busy > r.servers[s].uptime + kEps)
            return fail("capacity: server " + std::to_string(s) +
                        " busy " + std::to_string(r.servers[s].busy) +
                        "s exceeds uptime " +
                        std::to_string(r.servers[s].uptime) + "s");
    }
    if (items_sum != r.completed)
        return fail("conservation: per-server items sum != "
                    "completed");

    // One GPU, one launch at a time: the launch intervals recorded
    // on a server must not overlap. Greedy launches share
    // (start, completion) across their batch; collapse duplicates.
    std::map<int, std::vector<std::pair<double, double>>> launches;
    for (const RequestRecord &rec : r.requests) {
        if (!rec.rejected)
            launches[rec.server].emplace_back(rec.start,
                                              rec.completion);
    }
    for (auto &[server, iv] : launches) {
        std::sort(iv.begin(), iv.end());
        iv.erase(std::unique(iv.begin(), iv.end()), iv.end());
        for (size_t i = 1; i < iv.size(); ++i) {
            if (iv[i].first + kEps < iv[i - 1].second)
                return fail(
                    "capacity: server " + std::to_string(server) +
                    " launches overlap (" +
                    std::to_string(iv[i].first) + " < " +
                    std::to_string(iv[i - 1].second) + ")");
        }
    }

    // --- Quantile coherence --------------------------------------
    if (!(r.p50_latency <= r.p95_latency &&
          r.p95_latency <= r.p99_latency &&
          r.p99_latency <= r.p999_latency &&
          r.p999_latency <= r.max_latency + kEps))
        return fail("quantiles: p50 <= p95 <= p99 <= p999 <= max "
                    "violated");
    if (r.mean_latency < 0.0 || r.p50_latency < 0.0)
        return fail("quantiles: negative latency");
    if (r.gpu_utilization < 0.0 ||
        r.gpu_utilization > 1.0 + 1e-6)
        return fail("capacity: gpu_utilization outside [0, 1]");
    if (r.avg_batch > cfg.max_batch + 1e-9)
        return fail("capacity: avg_batch exceeds max_batch");
    return std::nullopt;
}

std::optional<std::string>
checkSingleServerEquivalence(const InferenceWorkload &w, double qps,
                             int64_t num_requests, uint64_t seed,
                             int max_batch)
{
    ServingConfig scfg;
    scfg.max_batch = max_batch;
    ServingSimulator seed_sim(scfg);
    inference::ServingResult a =
        seed_sim.run(w, qps, num_requests, seed);

    FleetConfig fcfg;
    fcfg.num_servers = 1;
    fcfg.max_batch = max_batch;
    fcfg.batching = Batching::Greedy;
    fcfg.record_requests = false;
    stats::ArrivalConfig arrival;
    arrival.kind = stats::ArrivalKind::Constant;
    arrival.qps = qps;
    FleetResult b =
        FleetSimulator(fcfg).run({{w, arrival}}, num_requests, seed);

    auto diff = [](const std::string &field, double x, double y) {
        std::ostringstream os;
        os.precision(17);
        os << "single-server differential: " << field
           << " diverges (serving " << x << " vs fleet " << y << ")";
        return os.str();
    };
    // Byte-exact: the fleet shares the seed simulator's RNG orbit,
    // sampler and arithmetic, so == (not NEAR) is the contract.
    if (a.requests != b.completed)
        return fail("single-server differential: completion counts "
                    "differ");
    if (a.duration != b.duration)
        return diff("duration", a.duration, b.duration);
    if (a.throughput != b.throughput)
        return diff("throughput", a.throughput, b.throughput);
    if (a.mean_latency != b.mean_latency)
        return diff("mean_latency", a.mean_latency, b.mean_latency);
    if (a.p50_latency != b.p50_latency)
        return diff("p50", a.p50_latency, b.p50_latency);
    if (a.p95_latency != b.p95_latency)
        return diff("p95", a.p95_latency, b.p95_latency);
    if (a.p99_latency != b.p99_latency)
        return diff("p99", a.p99_latency, b.p99_latency);
    if (a.p999_latency != b.p999_latency)
        return diff("p999", a.p999_latency, b.p999_latency);
    if (a.gpu_utilization != b.gpu_utilization)
        return diff("gpu_utilization", a.gpu_utilization,
                    b.gpu_utilization);
    if (a.avg_batch != b.avg_batch)
        return diff("avg_batch", a.avg_batch, b.avg_batch);
    if (a.verdict != b.verdict)
        return fail(std::string("single-server differential: "
                                "verdict diverges (") +
                    toString(a.verdict) + " vs " +
                    toString(b.verdict) + ")");
    return std::nullopt;
}

std::string
describe(const FleetFuzzFailure &f)
{
    std::ostringstream os;
    os << "fleet oracle violation at seed " << f.seed << "\n"
       << "  shape: " << f.shape << "\n"
       << "  " << f.message << "\n"
       << "  repro: PAICHAR_FLEET_SEED=" << f.seed
       << " ctest -L serve\n";
    return os.str();
}

std::optional<FleetFuzzFailure>
fuzzFleet(uint64_t base_seed, int count, int64_t num_requests)
{
    InferenceWorkload resnet = InferenceWorkload::fromTraining(
        workload::ModelZoo::resnet50());
    InferenceWorkload bert = InferenceWorkload::fromTraining(
        workload::ModelZoo::bert());

    for (int i = 0; i < count; ++i) {
        uint64_t seed = base_seed + static_cast<uint64_t>(i);
        stats::Rng shape_rng(seed ^ 0x666c656574ULL); // "fleet"

        FleetConfig cfg;
        cfg.num_servers =
            static_cast<int>(shape_rng.uniformInt(1, 4));
        cfg.max_batch = static_cast<int>(shape_rng.uniformInt(1, 8));
        cfg.routing = static_cast<Routing>(shape_rng.uniformInt(0, 2));
        cfg.batching =
            static_cast<Batching>(shape_rng.uniformInt(0, 1));
        cfg.admit_queue = shape_rng.bernoulli(0.5)
                              ? static_cast<int>(
                                    shape_rng.uniformInt(4, 32))
                              : 0;
        cfg.record_requests = true;
        if (shape_rng.bernoulli(0.3)) {
            cfg.autoscaler.enabled = true;
            cfg.autoscaler.min_servers = 1;
            cfg.autoscaler.max_servers = 8;
            cfg.autoscaler.check_interval = 0.5;
            cfg.autoscaler.provision_lag =
                shape_rng.uniform(0.0, 5.0);
        }

        std::vector<ModelLoad> models;
        int num_models =
            static_cast<int>(shape_rng.uniformInt(1, 2));
        for (int m = 0; m < num_models; ++m) {
            ModelLoad load;
            load.workload = m == 0 ? resnet : bert;
            load.arrival.kind = static_cast<stats::ArrivalKind>(
                shape_rng.uniformInt(0, 2));
            // Spread offered load from comfortable to overloaded so
            // the oracle sees stable, saturated and rejecting runs.
            load.arrival.qps = shape_rng.uniform(50.0, 4000.0);
            models.push_back(load);
        }

        std::ostringstream shape;
        shape << "servers=" << cfg.num_servers
              << " max_batch=" << cfg.max_batch << " routing="
              << toString(cfg.routing) << " batching="
              << toString(cfg.batching) << " admit="
              << cfg.admit_queue << " autoscale="
              << (cfg.autoscaler.enabled ? "on" : "off")
              << " models=" << models.size();
        for (const ModelLoad &m : models)
            shape << " [" << toString(m.arrival.kind) << " qps="
                  << m.arrival.qps << "]";

        FleetResult r;
        try {
            r = FleetSimulator(cfg).run(models, num_requests, seed);
        } catch (const std::exception &e) {
            return FleetFuzzFailure{
                seed, std::string("unexpected throw: ") + e.what(),
                shape.str()};
        }
        if (auto msg = checkFleetInvariants(cfg, models, r))
            return FleetFuzzFailure{seed, *msg, shape.str()};

        // Every seed also replays the byte-exact differential.
        double qps = 100.0 + static_cast<double>(seed % 1500);
        if (auto msg = checkSingleServerEquivalence(
                resnet, qps, std::min<int64_t>(num_requests, 1500),
                seed, cfg.max_batch))
            return FleetFuzzFailure{seed, *msg, shape.str()};
    }
    return std::nullopt;
}

} // namespace paichar::testkit
