/**
 * @file
 * Scheduler differential oracle: policy-independent invariants every
 * clustersim policy must uphold, checked against generated submission
 * streams, plus a differential comparison against the FIFO baseline.
 *
 * The invariants (DESIGN.md Sec 13):
 *  - job conservation: every admitted request completes exactly once,
 *    no job is lost or duplicated, drops are only the counted
 *    unplaceable ones;
 *  - causality: no negative queueing delay (start >= submit), no
 *    negative runtime, preemption segments ordered and gap-free
 *    against the recorded start/finish;
 *  - work conservation: a job's occupied seconds cover all of its
 *    training steps, and preemption/restart loses at most one step
 *    per preemption;
 *  - capacity: the sum of allocated GPUs never exceeds the cluster,
 *    at any point of the simulated timeline;
 *  - differential: every policy completes the same job population as
 *    FIFO with the same per-job step counts -- policies reorder work,
 *    they must never change it.
 *
 * fuzzPolicies() sweeps seed-pure generated streams through every
 * policy and, on a violation, shrinks the stream (greedy chunk
 * removal, ddmin-style) to a minimal failing submission set, then
 * renders a one-seed reproducer.
 */

#ifndef PAICHAR_TESTKIT_SCHED_ORACLE_H
#define PAICHAR_TESTKIT_SCHED_ORACLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "clustersim/scheduler.h"
#include "testkit/gen.h"

namespace paichar::testkit {

/** Shape of a generated submission stream. */
struct SchedStreamOptions
{
    int num_jobs = 60;
    /** Mean Poisson submission rate. */
    double jobs_per_hour = 400.0;
    /** Median/sigma of the lognormal training length, in steps. */
    double steps_median = 200.0;
    double steps_sigma = 1.2;
};

/**
 * A seed-pure submission stream: jobs from @p gen, Poisson arrivals
 * and lognormal lengths from a private stream of @p seed. cNode
 * counts are clamped to @p num_servers (mirroring the CLI).
 */
std::vector<clustersim::JobRequest>
genRequests(const JobGenerator &gen, uint64_t seed,
            const SchedStreamOptions &opt, int num_servers);

/**
 * Check every policy-independent invariant of @p out, which must be
 * the outcome of running @p requests under @p cfg.
 * @return nullopt when all hold, else a violation description.
 */
std::optional<std::string>
checkSchedInvariants(const std::vector<clustersim::JobRequest> &requests,
                     const clustersim::SchedulerConfig &cfg,
                     const clustersim::ClusterOutcome &out);

/**
 * Differential check: @p policy_out must complete exactly the FIFO
 * baseline's job population (same ids, same per-job training steps).
 * @return nullopt when equivalent, else the first divergence.
 */
std::optional<std::string>
checkAgainstFifo(const clustersim::ClusterOutcome &policy_out,
                 const clustersim::ClusterOutcome &fifo_out);

/** A shrunk scheduler-fuzz counterexample. */
struct SchedFuzzFailure
{
    /** Seed whose generated stream violated an invariant. */
    uint64_t seed = 0;
    /** Policy under which the violation occurred. */
    clustersim::Policy policy = clustersim::Policy::Fifo;
    /** The oracle's message for the shrunk stream. */
    std::string message;
    /** Size of the original failing stream. */
    size_t stream_jobs = 0;
    /** The minimized failing stream. */
    std::vector<clustersim::JobRequest> shrunk;
    /** One-seed reproducer command ("{seed}" substituted). */
    std::string repro;
};

/** Render a failure (seed, policy, message, shrunk stream, repro). */
std::string describe(const SchedFuzzFailure &f);

/**
 * Fuzz @p policies over @p count streams generated from consecutive
 * seeds (base_seed + i), checking invariants and the FIFO
 * differential for each. The first violation is shrunk to a minimal
 * stream before being returned.
 *
 * @param cfg   Cluster shape; the policy field is overridden per run.
 * @param repro_template Command template; the first "{seed}" is
 *        replaced with the failing seed.
 */
std::optional<SchedFuzzFailure>
fuzzPolicies(const JobGenerator &gen, uint64_t base_seed, int count,
             const std::vector<clustersim::Policy> &policies,
             const clustersim::SchedulerConfig &cfg,
             const SchedStreamOptions &opt = {},
             const std::string &repro_template =
                 "PAICHAR_SCHED_SEED={seed} <test binary>");

} // namespace paichar::testkit

#endif // PAICHAR_TESTKIT_SCHED_ORACLE_H
