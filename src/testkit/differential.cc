#include "differential.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "core/analytical_model.h"
#include "testbed/training_sim.h"
#include "testkit/property.h"

namespace paichar::testkit {

using workload::ArchType;
using workload::TrainingJob;

DifferentialOracle::DifferentialOracle(DiffOptions opts)
    : opts_(std::move(opts)), gen_(opts_.ranges)
{
    assert(opts_.efficiency > 0.0 && opts_.efficiency <= 1.0);
    assert(opts_.tolerance > 0.0);
}

DiffCase
DifferentialOracle::evaluate(const TrainingJob &job, uint64_t seed) const
{
    DiffCase c;
    c.seed = seed;
    c.job = job;

    // Analytical side, aligned with the simulator's physics (see the
    // header): ring-aware collectives, PCIe contention only where the
    // simulated topology actually shares the root (1wng).
    core::AnalyticalModel model(
        opts_.cluster,
        core::EfficiencyAssumption{opts_.efficiency, opts_.efficiency});
    model.setRingAware(true);
    model.setPcieContention(job.arch == ArchType::OneWorkerMultiGpu);
    c.analytical = model.stepTime(job, core::OverlapMode::NonOverlap);

    // Simulated side: same hardware, same uniform derate, no
    // framework overhead (the analytical model has no overhead term).
    testbed::SimOptions so;
    so.cluster = opts_.cluster;
    so.kernel_launch_overhead = 0.0;
    so.preprocessing_rate = 0.0;
    testbed::TrainingSimulator sim(so);
    workload::EfficiencyProfile eff;
    eff.gpu_flops = eff.gpu_memory = eff.pcie = eff.network =
        opts_.efficiency;
    auto graph = JobGenerator::graphFor(job.features, seed);
    c.simulated = sim.run(graph, job.features, job.arch,
                          job.num_cnodes, eff)
                      .total_time;

    // Relative to the simulated ("measured") side, as in Fig 12.
    // Degenerate all-zero jobs (post-shrinking) compare equal.
    double denom = std::max(c.simulated, 1e-15);
    c.rel_error = c.simulated <= 0.0 && c.analytical <= 0.0
                      ? 0.0
                      : std::abs(c.analytical - c.simulated) / denom;
    return c;
}

DiffCase
DifferentialOracle::evaluateSeed(uint64_t seed) const
{
    return evaluate(gen_.job(seed), seed);
}

DifferentialOracle::Report
DifferentialOracle::run(uint64_t base_seed, int count,
                        runtime::ThreadPool *pool) const
{
    assert(count > 0);
    auto cases = runtime::parallelMap<DiffCase>(
        pool, static_cast<size_t>(count), [&](size_t i) {
            return evaluateSeed(base_seed + static_cast<uint64_t>(i));
        });

    Report r;
    r.count = count;
    r.worst = cases.front();
    for (const DiffCase &c : cases) {
        r.mean_rel_error += c.rel_error;
        if (c.rel_error > opts_.tolerance)
            ++r.violations;
        if (c.rel_error > r.worst.rel_error)
            r.worst = c;
    }
    r.mean_rel_error /= count;
    return r;
}

std::string
DifferentialOracle::explain(const DiffCase &c) const
{
    // Shrink while the disagreement stays beyond tolerance, so the
    // printed counterexample isolates the divergent term.
    auto beyond = [&](const TrainingJob &j) {
        return evaluate(j, c.seed).rel_error > opts_.tolerance;
    };
    TrainingJob shrunk = beyond(c.job) ? shrinkJob(c.job, beyond) : c.job;
    DiffCase sc = evaluate(shrunk, c.seed);

    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "analytical %.6g s vs simulated %.6g s "
                  "(rel err %.2f%%, tolerance %.0f%%)",
                  sc.analytical, sc.simulated, 100.0 * sc.rel_error,
                  100.0 * opts_.tolerance);

    std::string s;
    s += "differential violation at seed " + std::to_string(c.seed) +
         " (" + workload::toString(c.job.arch) + ")\n";
    s += std::string("  ") + buf;
    s += "\n  generated: " + jobCsvRow(c.job);
    s += "\n  shrunk:    " + jobCsvRow(shrunk);
    s += "\n  reproduce: PAICHAR_DIFF_SEED=" + std::to_string(c.seed) +
         " ./tests/differential_test "
         "--gtest_filter=DifferentialTest.SingleSeedReproducer\n";
    return s;
}

} // namespace paichar::testkit
