/**
 * @file
 * Fleet differential oracle: policy-independent invariants every
 * serving-fleet configuration must uphold, checked against fuzzed
 * arrival streams, plus the byte-exact differential against the seed
 * single-server simulator.
 *
 * The invariants (DESIGN.md Sec 14):
 *  - request conservation: offered = admitted + rejected, every
 *    admitted request completes exactly once, rejected requests never
 *    complete, and the per-server item counts sum to the completions;
 *  - causality: arrival <= launch start <= completion for every
 *    served request, and every launch respects max_batch;
 *  - per-server capacity: one GPU serves one launch at a time — the
 *    launches recorded on a server, ordered by start, never overlap —
 *    and a server's busy seconds never exceed its uptime;
 *  - quantile coherence: p50 <= p95 <= p99 <= p999 <= max;
 *  - differential: a one-server greedy fleet with a constant stream
 *    must reproduce the seed ServingSimulator byte-for-byte (same
 *    RNG orbit, same arithmetic, same verdict).
 *
 * fuzzFleet() sweeps seed-derived fleet shapes (servers, routing,
 * batching, admission, arrival kinds) and returns the first violation
 * with a one-seed reproducer.
 */

#ifndef PAICHAR_TESTKIT_FLEET_ORACLE_H
#define PAICHAR_TESTKIT_FLEET_ORACLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "inference/fleet_sim.h"

namespace paichar::testkit {

/**
 * Check every policy-independent invariant of @p result, which must
 * come from running @p models under @p cfg with record_requests on.
 * @return nullopt when all hold, else a violation description.
 */
std::optional<std::string>
checkFleetInvariants(const inference::FleetConfig &cfg,
                     const std::vector<inference::ModelLoad> &models,
                     const inference::FleetResult &result);

/**
 * Differential check: a one-server greedy fleet over a constant
 * @p qps stream must reproduce the seed ServingSimulator exactly
 * (bitwise-equal doubles, equal counts, equal verdict).
 * @return nullopt when identical, else the first divergence.
 */
std::optional<std::string>
checkSingleServerEquivalence(const inference::InferenceWorkload &w,
                             double qps, int64_t num_requests,
                             uint64_t seed, int max_batch = 8);

/** A fleet-fuzz counterexample. */
struct FleetFuzzFailure
{
    /** Seed whose derived fleet violated an invariant. */
    uint64_t seed = 0;
    /** The oracle's message. */
    std::string message;
    /** Human-readable shape of the failing fleet. */
    std::string shape;
};

/** Render a failure (seed, shape, message). */
std::string describe(const FleetFuzzFailure &f);

/**
 * Fuzz @p count fleet shapes derived from consecutive seeds
 * (base_seed + i): each seed picks servers, routing, batching,
 * admission bound, autoscaler on/off and per-model arrival kinds,
 * runs @p num_requests arrivals and checks every invariant. Every
 * seed also replays the single-server differential.
 */
std::optional<FleetFuzzFailure>
fuzzFleet(uint64_t base_seed, int count, int64_t num_requests = 2000);

} // namespace paichar::testkit

#endif // PAICHAR_TESTKIT_FLEET_ORACLE_H
