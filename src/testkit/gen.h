/**
 * @file
 * Deterministic generative fuzzing for the verification layer: random
 * TrainingJobs, op graphs and hardware configurations spanning the
 * ranges the paper observed in production (Figs 5-8, Tables I/III).
 *
 * Every artifact is a pure function of a single 64-bit seed, so a
 * failing property or differential case is reproducible from one
 * printed number: generators derive a private SplitMix64 stream from
 * the seed and never consult global state. Ranges are sampled
 * log-uniformly — the paper's populations are heavy-tailed, and
 * log-uniform coverage exercises both the tiny 1w1g jobs and the
 * multi-gigabyte PS/Worker embedding jobs with equal probability.
 */

#ifndef PAICHAR_TESTKIT_GEN_H
#define PAICHAR_TESTKIT_GEN_H

#include <cstdint>
#include <vector>

#include "hw/hardware_config.h"
#include "stats/rng.h"
#include "workload/op_graph.h"
#include "workload/training_job.h"

namespace paichar::testkit {

/** Closed positive interval sampled log-uniformly. */
struct LogRange
{
    double lo = 1.0;
    double hi = 1.0;
};

/** Closed integer interval sampled uniformly. */
struct IntRange
{
    int lo = 1;
    int hi = 1;
};

/**
 * Sampling ranges for generated jobs and hardware. Defaults span the
 * paper's observed production population; differential() narrows them
 * to the regime where the analytical model and the event-driven
 * simulator implement the same physics (see differential.h).
 */
struct GenRanges
{
    // ----- per-step per-cNode demands (Fig 4 schema, Table V spans) --
    LogRange flop_count{1e10, 2e12};
    LogRange mem_access_bytes{1e9, 2e11};
    LogRange input_bytes{1e5, 5e8};
    LogRange comm_bytes{1e6, 5e9};
    LogRange batch_size{16, 4096};

    /** Probability a job carries sparse (embedding) traffic. */
    double embedding_prob = 0.3;
    /** Embedding share of comm_bytes when present (uniform). */
    double embedding_frac_lo = 0.05;
    double embedding_frac_hi = 0.9;

    // ----- scale per architecture (Table II placement rules) --------
    IntRange cnodes_1wng{2, 8};       ///< single server
    IntRange cnodes_ps{2, 64};        ///< one worker per server
    IntRange num_ps{1, 8};
    IntRange cnodes_ar_local{2, 8};   ///< single NVLink server
    IntRange cnodes_ar_cluster{2, 64};
    IntRange cnodes_pearl{2, 8};

    /** Architectures in the mix (uniform choice). */
    std::vector<workload::ArchType> archs{
        workload::ArchType::OneWorkerOneGpu,
        workload::ArchType::OneWorkerMultiGpu,
        workload::ArchType::PsWorker,
        workload::ArchType::AllReduceLocal,
        workload::ArchType::AllReduceCluster,
        workload::ArchType::Pearl,
    };

    // ----- hardware configurations (Table III grid spans) -----------
    LogRange ethernet_gbps{10.0, 100.0};
    LogRange pcie_gbs{10.0, 50.0};
    LogRange gpu_peak_tflops{8.0, 64.0};
    LogRange gpu_mem_tbs{1.0, 4.0};
    IntRange num_servers{1, 64};

    /**
     * Ranges for the differential analytical-vs-simulator suite.
     * Two documented restrictions (details in differential.h):
     *  - AllReduce-Cluster is confined to two-server placements
     *    (9..16 cNodes): beyond that the simulator's hierarchical
     *    ring charges 2(s-1)/s of the buffer per NIC while the paper's
     *    model charges exactly one buffer, a >10% modeling divergence
     *    by design.
     *  - PEARL is excluded from the 10% population (its partitioned
     *    sparse exchange has no analytical counterpart at this
     *    fidelity) and asserted separately under a looser bound.
     */
    static GenRanges differential();
};

/**
 * Seed-addressed generator: every product is a pure function of
 * (ranges, seed). Copyable, stateless between calls.
 */
class JobGenerator
{
  public:
    explicit JobGenerator(GenRanges ranges = GenRanges{});

    /** A random TrainingJob; arch, scale and demands from @p seed. */
    workload::TrainingJob job(uint64_t seed) const;

    /** A random job pinned to @p arch. */
    workload::TrainingJob job(uint64_t seed,
                              workload::ArchType arch) const;

    /** Per-step demands alone (no arch-dependent fields). */
    workload::WorkloadFeatures features(stats::Rng &rng) const;

    /** A random hardware configuration spanning the Table III grid. */
    hw::ClusterSpec cluster(uint64_t seed) const;

    /**
     * A structurally random op graph whose aggregate demands equal
     * @p f exactly (via OpGraph::scaleToTargets): one DataLoad op,
     * then alternating compute-bound (MatMul/Conv) and memory-bound
     * (ElementWise/Normalization/Reduction) kernels with random
     * relative weights. Feeding it to the testbed simulator therefore
     * reproduces the analytical model's demand totals while still
     * exercising kernel-by-kernel execution.
     */
    static workload::OpGraph graphFor(const workload::WorkloadFeatures &f,
                                      uint64_t seed);

    const GenRanges &ranges() const { return ranges_; }

  private:
    int cnodesFor(workload::ArchType arch, stats::Rng &rng) const;

    GenRanges ranges_;
};

/** Log-uniform draw from @p r (lo == hi returns lo). */
double sampleLog(stats::Rng &rng, const LogRange &r);

/** Uniform integer draw from @p r. */
int sampleInt(stats::Rng &rng, const IntRange &r);

/** One CSV row (no header) for a job — printable reproducer. */
std::string jobCsvRow(const workload::TrainingJob &job);

} // namespace paichar::testkit

#endif // PAICHAR_TESTKIT_GEN_H
