#include "property.h"

#include <algorithm>
#include <cassert>

namespace paichar::testkit {

using workload::TrainingJob;
using workload::WorkloadFeatures;

namespace {

/** Re-establish feature invariants after a field was reduced. */
void
clampFeatures(WorkloadFeatures &f)
{
    f.embedding_comm_bytes =
        std::min(f.embedding_comm_bytes, f.comm_bytes);
}

/** The candidate simplifications, most aggressive first. */
std::vector<TrainingJob>
candidates(const TrainingJob &job)
{
    std::vector<TrainingJob> out;
    auto push = [&](auto &&mutate) {
        TrainingJob c = job;
        mutate(c);
        clampFeatures(c.features);
        out.push_back(std::move(c));
    };

    if (job.num_cnodes > 1) {
        push([](TrainingJob &c) { c.num_cnodes = 1; });
        push([](TrainingJob &c) {
            c.num_cnodes = std::max(1, c.num_cnodes / 2);
        });
    }
    if (job.num_ps > 0)
        push([](TrainingJob &c) { c.num_ps = 0; });

    double WorkloadFeatures::*fields[] = {
        &WorkloadFeatures::flop_count,
        &WorkloadFeatures::mem_access_bytes,
        &WorkloadFeatures::input_bytes,
        &WorkloadFeatures::comm_bytes,
        &WorkloadFeatures::embedding_comm_bytes,
        &WorkloadFeatures::dense_weight_bytes,
        &WorkloadFeatures::embedding_weight_bytes,
    };
    for (auto field : fields) {
        if (job.features.*field > 0.0) {
            push([field](TrainingJob &c) { c.features.*field = 0.0; });
            push([field](TrainingJob &c) { c.features.*field /= 2.0; });
        }
    }
    // batch_size must stay positive (WorkloadFeatures::valid()), so it
    // shrinks toward 1 rather than 0.
    if (job.features.batch_size > 1.0) {
        push([](TrainingJob &c) { c.features.batch_size = 1.0; });
        push([](TrainingJob &c) {
            c.features.batch_size =
                std::max(1.0, c.features.batch_size / 2.0);
        });
    }
    return out;
}

} // namespace

TrainingJob
shrinkJob(const TrainingJob &job,
          const std::function<bool(const TrainingJob &)> &stillFails)
{
    assert(stillFails(job) && "shrinkJob needs a failing input");
    TrainingJob cur = job;
    // Greedy descent: take the first candidate that still fails;
    // halving steps are bounded, so this terminates.
    for (int round = 0; round < 512; ++round) {
        bool improved = false;
        for (TrainingJob &c : candidates(cur)) {
            if (stillFails(c)) {
                cur = std::move(c);
                improved = true;
                break;
            }
        }
        if (!improved)
            break;
    }
    return cur;
}

std::string
describe(const PropertyFailure &f)
{
    std::string s;
    s += "property violated at seed " + std::to_string(f.seed) + "\n";
    s += "  " + f.message + "\n";
    s += "  generated: " + jobCsvRow(f.job) + "\n";
    s += "  shrunk:    " + jobCsvRow(f.shrunk) + "\n";
    s += "  reproduce: " + f.repro + "\n";
    return s;
}

std::optional<PropertyFailure>
checkJobs(const JobGenerator &gen, uint64_t base_seed, int count,
          const JobProperty &prop, const std::string &repro_template)
{
    for (int i = 0; i < count; ++i) {
        uint64_t seed = base_seed + static_cast<uint64_t>(i);
        TrainingJob job = gen.job(seed);
        auto msg = prop(job);
        if (!msg)
            continue;

        PropertyFailure f;
        f.seed = seed;
        f.job = job;
        f.shrunk = shrinkJob(
            job, [&](const TrainingJob &c) { return prop(c).has_value(); });
        f.message = prop(f.shrunk).value_or(*msg);
        f.repro = repro_template;
        if (auto pos = f.repro.find("{seed}"); pos != std::string::npos)
            f.repro.replace(pos, 6, std::to_string(seed));
        return f;
    }
    return std::nullopt;
}

} // namespace paichar::testkit
