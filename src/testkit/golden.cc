#include "golden.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "cli/cli.h"
#include "runtime/parallel.h"
#include "sim/sharded_engine.h"

namespace paichar::testkit {

namespace {

/** First byte offset where @p a and @p b differ, with line context. */
std::string
firstDifference(const std::string &a, const std::string &b)
{
    size_t n = std::min(a.size(), b.size());
    size_t pos = 0;
    while (pos < n && a[pos] == b[pos])
        ++pos;
    size_t line = 1 + static_cast<size_t>(std::count(
                          a.begin(),
                          a.begin() + static_cast<ptrdiff_t>(pos), '\n'));
    auto context = [pos](const std::string &s) {
        size_t start = s.rfind('\n', pos == 0 ? 0 : pos - 1);
        start = start == std::string::npos ? 0 : start + 1;
        size_t end = s.find('\n', pos);
        end = end == std::string::npos ? s.size() : end;
        return s.substr(start, std::min<size_t>(end - start, 120));
    };
    std::string msg = "first difference at byte " + std::to_string(pos) +
                      " (line " + std::to_string(line) + ")";
    msg += "\n  expected: " +
           (pos >= a.size() ? std::string("<end of golden>")
                            : context(a));
    msg += "\n  actual:   " +
           (pos >= b.size() ? std::string("<end of output>")
                            : context(b));
    return msg;
}

} // namespace

bool
updateGoldensRequested()
{
    const char *v = std::getenv("PAICHAR_UPDATE_GOLDENS");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

GoldenResult
checkGolden(const std::string &name,
            const std::vector<std::string> &args,
            const GoldenOptions &opts)
{
    assert(!opts.dir.empty());
    assert(!opts.thread_counts.empty());
    assert(!opts.shard_counts.empty());

    GoldenResult r;

    // Run under the full thread x shard matrix; require identical
    // bytes everywhere (the binary-level determinism contracts of
    // the runtime layer and the sharded event engine). Artifact
    // files the command writes are held to the same contract.
    std::string output;
    std::vector<std::string> artifacts(opts.artifact_files.size());
    bool first = true;
    auto readArtifact =
        [](const std::string &path) -> std::optional<std::string> {
        std::ifstream f(path, std::ios::binary);
        if (!f)
            return std::nullopt;
        std::ostringstream buf;
        buf << f.rdbuf();
        return std::move(buf).str();
    };
    for (int threads : opts.thread_counts) {
        for (int shards : opts.shard_counts) {
            std::vector<std::string> full = args;
            full.push_back("--threads");
            full.push_back(std::to_string(threads));
            full.push_back("--shards");
            full.push_back(std::to_string(shards));

            std::ostringstream out, err;
            int code = cli::run(full, out, err);
            // Leave the process-wide pool and shard default as the
            // environment dictates.
            runtime::setThreadCount(0);
            sim::setShardCount(0);
            std::string combo = "--threads " +
                                std::to_string(threads) +
                                " --shards " + std::to_string(shards);
            if (code != 0 || !err.str().empty()) {
                r.message = name + ": CLI exited " +
                            std::to_string(code) + " under " + combo +
                            "\n  stderr: " + err.str();
                return r;
            }
            if (first) {
                output = out.str();
            } else if (out.str() != output) {
                r.message = name + ": output differs between " +
                            "--threads " +
                            std::to_string(opts.thread_counts[0]) +
                            " --shards " +
                            std::to_string(opts.shard_counts[0]) +
                            " and " + combo + "\n" +
                            firstDifference(output, out.str());
                return r;
            }
            for (size_t i = 0; i < opts.artifact_files.size(); ++i) {
                auto text = readArtifact(opts.artifact_files[i]);
                if (!text) {
                    r.message = name + ": command did not write '" +
                                opts.artifact_files[i] + "' under " +
                                combo;
                    return r;
                }
                if (first) {
                    artifacts[i] = std::move(*text);
                } else if (*text != artifacts[i]) {
                    r.message = name + ": artifact '" +
                                opts.artifact_files[i] +
                                "' differs between --threads " +
                                std::to_string(
                                    opts.thread_counts[0]) +
                                " --shards " +
                                std::to_string(opts.shard_counts[0]) +
                                " and " + combo + "\n" +
                                firstDifference(artifacts[i], *text);
                    return r;
                }
            }
            first = false;
        }
    }

    // Snapshot names: <name>.golden for stdout, then
    // <name>.<basename>.golden per artifact file.
    std::vector<std::pair<std::string, const std::string *>> snaps;
    snaps.emplace_back(opts.dir + "/" + name + ".golden", &output);
    for (size_t i = 0; i < opts.artifact_files.size(); ++i) {
        const std::string &p = opts.artifact_files[i];
        auto slash = p.rfind('/');
        std::string base =
            slash == std::string::npos ? p : p.substr(slash + 1);
        snaps.emplace_back(opts.dir + "/" + name + "." + base +
                               ".golden",
                           &artifacts[i]);
    }

    if (updateGoldensRequested()) {
        size_t total = 0;
        for (const auto &[path, text] : snaps) {
            std::ofstream f(path,
                            std::ios::binary | std::ios::trunc);
            if (!f || !(f << *text)) {
                r.message =
                    name + ": cannot write golden '" + path + "'";
                return r;
            }
            total += text->size();
        }
        r.ok = true;
        r.updated = true;
        r.message = name + ": recorded " + std::to_string(total) +
                    " bytes across " +
                    std::to_string(snaps.size()) + " snapshot(s)";
        return r;
    }

    for (const auto &[path, text] : snaps) {
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            r.message = name + ": missing golden '" + path +
                        "' — record with PAICHAR_UPDATE_GOLDENS=1";
            return r;
        }
        std::ostringstream expected;
        expected << f.rdbuf();
        if (expected.str() != *text) {
            r.message = name + ": output does not match '" + path +
                        "'\n" + firstDifference(expected.str(), *text) +
                        "\n  re-record with PAICHAR_UPDATE_GOLDENS=1 "
                        "after reviewing";
            return r;
        }
    }
    r.ok = true;
    r.message = name + ": matched (" +
                std::to_string(output.size()) + " bytes, " +
                std::to_string(opts.thread_counts.size() *
                               opts.shard_counts.size()) +
                " thread x shard combinations, " +
                std::to_string(snaps.size()) + " snapshot(s))";
    return r;
}

} // namespace paichar::testkit
