/**
 * @file
 * Metamorphic/property checking over generated jobs, with shrinking.
 *
 * A property maps a TrainingJob to nullopt (holds) or a failure
 * message. checkJobs() sweeps seeds base..base+count-1, and on the
 * first violation *shrinks* the counterexample: it repeatedly tries
 * simplifying transformations (drop to one cNode, zero a demand
 * field, halve a demand field) and keeps any that still violate the
 * property, so the reported job is close to minimal — usually a
 * single non-zero field. The failure report carries the original
 * seed, the shrunk job as a CSV row, and a copy-pasteable one-seed
 * reproducer command.
 */

#ifndef PAICHAR_TESTKIT_PROPERTY_H
#define PAICHAR_TESTKIT_PROPERTY_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "testkit/gen.h"

namespace paichar::testkit {

/** nullopt when the property holds, else a failure description. */
using JobProperty =
    std::function<std::optional<std::string>(const workload::TrainingJob &)>;

/** A shrunk counterexample. */
struct PropertyFailure
{
    /** Seed whose generated job violated the property. */
    uint64_t seed = 0;
    /** The original generated counterexample. */
    workload::TrainingJob job;
    /** The minimized counterexample. */
    workload::TrainingJob shrunk;
    /** The property's message for the shrunk job. */
    std::string message;
    /** One-seed reproducer command ("{seed}" already substituted). */
    std::string repro;
};

/** Render a failure (seed, messages, CSV rows, repro command). */
std::string describe(const PropertyFailure &f);

/**
 * Minimize @p job under @p stillFails (true = still a counterexample).
 * Deterministic greedy descent to a fixpoint; the result always still
 * fails. Feature invariants (embedding_comm_bytes <= comm_bytes) are
 * preserved by every candidate transformation.
 */
workload::TrainingJob
shrinkJob(const workload::TrainingJob &job,
          const std::function<bool(const workload::TrainingJob &)>
              &stillFails);

/**
 * Check @p prop over @p count jobs generated from consecutive seeds.
 *
 * @param gen   Generator (job is a pure function of the seed).
 * @param base_seed First seed; iteration i uses base_seed + i.
 * @param count Number of generated jobs.
 * @param prop  The property.
 * @param repro_template Command template for reproduction; the first
 *        "{seed}" occurrence is replaced with the failing seed.
 * @return nullopt if every job satisfies the property, else the first
 *         failure, shrunk.
 */
std::optional<PropertyFailure>
checkJobs(const JobGenerator &gen, uint64_t base_seed, int count,
          const JobProperty &prop,
          const std::string &repro_template =
              "PAICHAR_TESTKIT_SEED={seed} <test binary>");

} // namespace paichar::testkit

#endif // PAICHAR_TESTKIT_PROPERTY_H
