#include "gen.h"

#include <cassert>
#include <cmath>

#include "trace/trace_io.h"

namespace paichar::testkit {

using workload::ArchType;
using workload::Op;
using workload::OpGraph;
using workload::OpType;
using workload::TrainingJob;
using workload::WorkloadFeatures;

double
sampleLog(stats::Rng &rng, const LogRange &r)
{
    assert(r.lo > 0.0 && r.lo <= r.hi);
    if (r.lo == r.hi)
        return r.lo;
    return std::exp(rng.uniform(std::log(r.lo), std::log(r.hi)));
}

int
sampleInt(stats::Rng &rng, const IntRange &r)
{
    assert(r.lo <= r.hi);
    return static_cast<int>(rng.uniformInt(r.lo, r.hi));
}

GenRanges
GenRanges::differential()
{
    GenRanges r;
    r.cnodes_ar_cluster = {9, 16}; // exactly two 8-GPU servers
    r.archs = {
        ArchType::OneWorkerOneGpu, ArchType::OneWorkerMultiGpu,
        ArchType::PsWorker,        ArchType::AllReduceLocal,
        ArchType::AllReduceCluster,
    };
    return r;
}

JobGenerator::JobGenerator(GenRanges ranges) : ranges_(std::move(ranges))
{
    assert(!ranges_.archs.empty());
}

WorkloadFeatures
JobGenerator::features(stats::Rng &rng) const
{
    WorkloadFeatures f;
    f.batch_size = sampleLog(rng, ranges_.batch_size);
    f.flop_count = sampleLog(rng, ranges_.flop_count);
    f.mem_access_bytes = sampleLog(rng, ranges_.mem_access_bytes);
    f.input_bytes = sampleLog(rng, ranges_.input_bytes);
    f.comm_bytes = sampleLog(rng, ranges_.comm_bytes);
    if (rng.bernoulli(ranges_.embedding_prob)) {
        f.embedding_comm_bytes =
            f.comm_bytes * rng.uniform(ranges_.embedding_frac_lo,
                                       ranges_.embedding_frac_hi);
    }
    // Model sizes follow the traffic volumes (dense jobs move ~their
    // parameter set per step; sparse jobs only the accessed rows).
    f.dense_weight_bytes = f.comm_bytes - f.embedding_comm_bytes;
    f.embedding_weight_bytes =
        f.embedding_comm_bytes * rng.uniform(1.0, 64.0);
    assert(f.valid());
    return f;
}

int
JobGenerator::cnodesFor(ArchType arch, stats::Rng &rng) const
{
    switch (arch) {
      case ArchType::OneWorkerOneGpu:
        return 1;
      case ArchType::OneWorkerMultiGpu:
        return sampleInt(rng, ranges_.cnodes_1wng);
      case ArchType::PsWorker:
        return sampleInt(rng, ranges_.cnodes_ps);
      case ArchType::AllReduceLocal:
        return sampleInt(rng, ranges_.cnodes_ar_local);
      case ArchType::AllReduceCluster:
        return sampleInt(rng, ranges_.cnodes_ar_cluster);
      case ArchType::Pearl:
        return sampleInt(rng, ranges_.cnodes_pearl);
    }
    return 1;
}

TrainingJob
JobGenerator::job(uint64_t seed) const
{
    stats::Rng rng(seed);
    auto arch = ranges_.archs[static_cast<size_t>(rng.uniformInt(
        0, static_cast<int64_t>(ranges_.archs.size()) - 1))];
    return job(seed, arch);
}

TrainingJob
JobGenerator::job(uint64_t seed, ArchType arch) const
{
    // Separate stream from the arch draw so that pinning the arch
    // still explores the full demand space per seed.
    stats::Rng rng(seed);
    stats::Rng demand = rng.split();

    TrainingJob j;
    j.id = static_cast<int64_t>(seed);
    j.arch = arch;
    j.num_cnodes = cnodesFor(arch, demand);
    j.num_ps = arch == ArchType::PsWorker
                   ? sampleInt(demand, ranges_.num_ps)
                   : 0;
    j.features = features(demand);
    if (arch != ArchType::Pearl) {
        // Only PEARL partitions sparse traffic; elsewhere the split is
        // inert, so keep non-PEARL jobs dense for clearer shrinking.
        j.features.dense_weight_bytes += j.features.embedding_weight_bytes;
        j.features.embedding_comm_bytes = 0.0;
        j.features.embedding_weight_bytes = 0.0;
    }
    return j;
}

hw::ClusterSpec
JobGenerator::cluster(uint64_t seed) const
{
    stats::Rng rng(seed);
    hw::ClusterSpec spec = hw::paiCluster();
    spec.name = "generated-" + std::to_string(seed);
    spec.ethernet_bandwidth =
        hw::gbitPerSec(sampleLog(rng, ranges_.ethernet_gbps));
    spec.server.pcie_bandwidth =
        hw::gbPerSec(sampleLog(rng, ranges_.pcie_gbs));
    spec.server.gpu.peak_flops =
        sampleLog(rng, ranges_.gpu_peak_tflops) * hw::kTFLOPs;
    spec.server.gpu.mem_bandwidth =
        sampleLog(rng, ranges_.gpu_mem_tbs) * hw::kTB;
    spec.num_servers = sampleInt(rng, ranges_.num_servers);
    return spec;
}

OpGraph
JobGenerator::graphFor(const WorkloadFeatures &f, uint64_t seed)
{
    stats::Rng rng(seed);
    OpGraph g;
    Op load;
    load.name = "input_load";
    load.type = OpType::DataLoad;
    load.mem_bytes = 1.0; // placeholder; rescaled below
    workload::OpId prev = g.addOp(load);

    // Alternating compute-bound / memory-bound kernel chain with
    // random relative weights; scaleToTargets pins the totals.
    constexpr OpType kCompute[] = {OpType::MatMul, OpType::Conv};
    constexpr OpType kMemory[] = {OpType::ElementWise,
                                  OpType::Normalization,
                                  OpType::Reduction};
    int layers = static_cast<int>(rng.uniformInt(1, 16));
    for (int l = 0; l < layers; ++l) {
        Op c;
        c.name = "compute_" + std::to_string(l);
        c.type = kCompute[rng.uniformInt(0, 1)];
        c.flops = rng.uniform(0.5, 2.0);
        c.inputs = {prev};
        prev = g.addOp(c);

        Op m;
        m.name = "memory_" + std::to_string(l);
        m.type = kMemory[rng.uniformInt(0, 2)];
        m.mem_bytes = rng.uniform(0.5, 2.0);
        m.output_bytes = m.mem_bytes / 2.0;
        m.inputs = {prev};
        prev = g.addOp(m);
    }
    g.scaleToTargets(f.flop_count, f.mem_access_bytes, f.input_bytes);
    assert(g.validate());
    return g;
}

std::string
jobCsvRow(const TrainingJob &job)
{
    // Reuse the canonical serializer; drop its header line.
    std::string csv = trace::toCsv({job});
    auto nl = csv.find('\n');
    std::string row =
        nl == std::string::npos ? csv : csv.substr(nl + 1);
    if (!row.empty() && row.back() == '\n')
        row.pop_back();
    return row;
}

} // namespace paichar::testkit
