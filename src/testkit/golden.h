/**
 * @file
 * Golden-snapshot testing for CLI subcommands.
 *
 * A golden check drives the CLI through its library entry point
 * (cli::run) under each requested --threads count, requires every run
 * to exit 0 with an empty error stream and *byte-identical* stdout
 * across thread counts (the runtime layer's determinism contract at
 * the binary level), and then compares that output byte-for-byte
 * against a committed snapshot under the goldens directory.
 *
 * Record mode: when the PAICHAR_UPDATE_GOLDENS environment variable
 * is set to a non-empty value other than "0", the snapshot file is
 * (re)written instead of compared. Workflow:
 *
 *   PAICHAR_UPDATE_GOLDENS=1 ctest -L golden   # re-record
 *   git diff tests/golden/goldens/             # review the change
 *   ctest -L golden                            # clean run is exact
 *
 * A missing golden is a hard failure (never a skip), so CI cannot
 * silently pass with snapshots absent.
 */

#ifndef PAICHAR_TESTKIT_GOLDEN_H
#define PAICHAR_TESTKIT_GOLDEN_H

#include <string>
#include <vector>

namespace paichar::testkit {

/** Golden harness configuration. */
struct GoldenOptions
{
    /** Directory holding <name>.golden snapshot files. */
    std::string dir;
    /**
     * --threads values to run the command under; all runs must
     * produce byte-identical stdout.
     */
    std::vector<int> thread_counts{1, 2, 8};
    /**
     * --shards values to cross with every thread count; all
     * thread x shard combinations must produce byte-identical
     * stdout (the sharded-engine determinism contract). The default
     * keeps commands that never touch the event engine cheap.
     */
    std::vector<int> shard_counts{1};
    /**
     * Files the command writes (e.g. a --timeline export) to hold to
     * the same contract as stdout: after every thread x shard combo
     * the harness reads each file, requires byte-identity across the
     * matrix, and compares/records it against
     * <name>.<basename>.golden. Paths are read as given (tests
     * chdir into their scratch directory).
     */
    std::vector<std::string> artifact_files;
};

/** Outcome of one golden check. */
struct GoldenResult
{
    /** Snapshot matched (or was recorded). */
    bool ok = false;
    /** Record mode wrote the snapshot this run. */
    bool updated = false;
    /** Diagnostic: mismatch location, CLI error, or status. */
    std::string message;
};

/** True when PAICHAR_UPDATE_GOLDENS requests record mode. */
bool updateGoldensRequested();

/**
 * Run `paichar <args>` (library entry point) and compare stdout to
 * @p dir/<name>.golden.
 *
 * @param name Snapshot name (file becomes <name>.golden).
 * @param args CLI arguments, excluding the program name and
 *             --threads/--shards (the harness appends both).
 */
GoldenResult checkGolden(const std::string &name,
                         const std::vector<std::string> &args,
                         const GoldenOptions &opts);

} // namespace paichar::testkit

#endif // PAICHAR_TESTKIT_GOLDEN_H
