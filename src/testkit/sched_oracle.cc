#include "sched_oracle.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "core/analytical_model.h"
#include "hw/hardware_config.h"
#include "stats/rng.h"

namespace paichar::testkit {

using clustersim::ClusterOutcome;
using clustersim::ClusterScheduler;
using clustersim::JobOutcome;
using clustersim::JobRequest;
using clustersim::SchedulerConfig;

std::vector<JobRequest>
genRequests(const JobGenerator &gen, uint64_t seed,
            const SchedStreamOptions &opt, int num_servers)
{
    stats::Rng rng(seed);
    double rate_per_sec = opt.jobs_per_hour / 3600.0;
    double t = 0.0;
    std::vector<JobRequest> requests;
    requests.reserve(static_cast<size_t>(opt.num_jobs));
    for (int i = 0; i < opt.num_jobs; ++i) {
        JobRequest req;
        req.job = gen.job(rng.nextU64());
        // Stream-local ids: generator ids are seed-derived and could
        // collide across draws, which would break conservation
        // checks keyed by id.
        req.job.id = i;
        req.job.num_cnodes = std::min(req.job.num_cnodes, num_servers);
        t += -std::log(1.0 - rng.uniform()) / rate_per_sec;
        req.submit_time = t;
        req.num_steps = std::max<int64_t>(
            1, static_cast<int64_t>(std::llround(rng.logNormal(
                   std::log(opt.steps_median), opt.steps_sigma))));
        requests.push_back(std::move(req));
    }
    return requests;
}

std::optional<std::string>
checkSchedInvariants(const std::vector<JobRequest> &requests,
                     const SchedulerConfig &cfg,
                     const ClusterOutcome &out)
{
    std::ostringstream msg;

    // --- job conservation ------------------------------------------
    if (out.jobs.size() +
            static_cast<size_t>(out.unplaceable_jobs) !=
        requests.size()) {
        msg << "job conservation: " << requests.size()
            << " submitted but " << out.jobs.size()
            << " scheduled + " << out.unplaceable_jobs << " dropped";
        return msg.str();
    }
    std::map<int64_t, const JobRequest *> by_id;
    for (const JobRequest &req : requests)
        by_id[req.job.id] = &req;
    if (by_id.size() != requests.size())
        return std::string("generated stream has duplicate job ids");

    std::set<int64_t> seen;
    for (const JobOutcome &jo : out.jobs) {
        auto it = by_id.find(jo.job_id);
        if (it == by_id.end()) {
            msg << "job " << jo.job_id
                << " completed but was never submitted";
            return msg.str();
        }
        if (!seen.insert(jo.job_id).second) {
            msg << "job " << jo.job_id << " completed twice";
            return msg.str();
        }
        const JobRequest &req = *it->second;

        // --- causality ---------------------------------------------
        if (jo.start_time < jo.submit_time) {
            msg << "job " << jo.job_id
                << ": negative queueing delay (start "
                << jo.start_time << " < submit " << jo.submit_time
                << ")";
            return msg.str();
        }
        if (jo.submit_time != req.submit_time) {
            msg << "job " << jo.job_id << ": submit time rewritten ("
                << jo.submit_time << " != " << req.submit_time << ")";
            return msg.str();
        }
        if (!std::isfinite(jo.finish_time))
            continue; // never-finishing job: holds GPUs forever
        if (jo.finish_time < jo.start_time) {
            msg << "job " << jo.job_id << ": negative runtime";
            return msg.str();
        }
        if (jo.preemptions > cfg.max_preemptions) {
            msg << "job " << jo.job_id << ": " << jo.preemptions
                << " preemptions exceed the cap "
                << cfg.max_preemptions;
            return msg.str();
        }

        // --- preemption segment structure --------------------------
        if (jo.segments.empty()) {
            if (jo.preemptions != 0) {
                msg << "job " << jo.job_id << ": " << jo.preemptions
                    << " preemptions but no recorded segments";
                return msg.str();
            }
        } else {
            if (jo.segments.size() !=
                static_cast<size_t>(jo.preemptions) + 1) {
                msg << "job " << jo.job_id << ": "
                    << jo.segments.size() << " segments for "
                    << jo.preemptions << " preemptions";
                return msg.str();
            }
            if (jo.segments.front().first != jo.start_time ||
                jo.segments.back().second != jo.finish_time) {
                msg << "job " << jo.job_id
                    << ": segments do not span [start, finish]";
                return msg.str();
            }
            for (size_t k = 0; k < jo.segments.size(); ++k) {
                auto [s, e] = jo.segments[k];
                if (e < s || (k > 0 && s < jo.segments[k - 1].second)) {
                    msg << "job " << jo.job_id
                        << ": segments unordered or overlapping";
                    return msg.str();
                }
            }
        }

        // --- work conservation -------------------------------------
        // With one hardware generation, every segment runs at the
        // same per-step time, so occupied seconds must cover every
        // training step and restarts may only redo the partial step
        // in flight at each preemption (< 1 step each).
        if (cfg.old_gen_fraction == 0.0 && jo.step_s > 0.0) {
            double run = jo.runSeconds();
            double need =
                jo.step_s * static_cast<double>(jo.num_steps);
            double cap =
                jo.step_s * static_cast<double>(jo.num_steps +
                                                jo.preemptions);
            double eps = 1e-6 * std::max(1.0, cap);
            if (run < need - eps) {
                msg << "job " << jo.job_id
                    << ": work lost (ran " << run << " s < "
                    << need << " s for " << jo.num_steps
                    << " steps)";
                return msg.str();
            }
            if (run > cap + eps) {
                msg << "job " << jo.job_id
                    << ": work duplicated (ran " << run << " s > "
                    << cap << " s for " << jo.num_steps
                    << " steps, " << jo.preemptions
                    << " preemptions)";
                return msg.str();
            }
        }
    }

    // --- capacity --------------------------------------------------
    // Sweep GPU occupancy over the union of all running segments.
    // Releases sort before acquisitions at the same instant: the
    // scheduler drains completions before placing, so GPUs freed at
    // time t are legitimately reusable at t.
    struct Ev
    {
        double t;
        int delta;
    };
    std::vector<Ev> events;
    for (const JobOutcome &jo : out.jobs) {
        auto add = [&](double s, double e) {
            events.push_back({s, jo.gpus});
            if (std::isfinite(e))
                events.push_back({e, -jo.gpus});
        };
        if (jo.segments.empty())
            add(jo.start_time, jo.finish_time);
        else
            for (auto [s, e] : jo.segments)
                add(s, e);
    }
    std::sort(events.begin(), events.end(),
              [](const Ev &a, const Ev &b) {
                  if (a.t != b.t)
                      return a.t < b.t;
                  return a.delta < b.delta;
              });
    int total = cfg.num_servers * cfg.gpus_per_server;
    int held = 0;
    for (const Ev &ev : events) {
        held += ev.delta;
        if (held > total) {
            msg << "capacity exceeded: " << held << " GPUs held > "
                << total << " at t=" << ev.t;
            return msg.str();
        }
    }
    return std::nullopt;
}

std::optional<std::string>
checkAgainstFifo(const ClusterOutcome &policy_out,
                 const ClusterOutcome &fifo_out)
{
    auto signature = [](const ClusterOutcome &o) {
        std::vector<std::pair<int64_t, int64_t>> sig;
        sig.reserve(o.jobs.size());
        for (const JobOutcome &jo : o.jobs)
            sig.push_back({jo.job_id, jo.num_steps});
        std::sort(sig.begin(), sig.end());
        return sig;
    };
    auto pol = signature(policy_out);
    auto fifo = signature(fifo_out);
    if (pol == fifo)
        return std::nullopt;
    std::ostringstream msg;
    if (pol.size() != fifo.size()) {
        msg << "policy completed " << pol.size()
            << " jobs, fifo completed " << fifo.size();
        return msg.str();
    }
    for (size_t i = 0; i < pol.size(); ++i) {
        if (pol[i] != fifo[i]) {
            msg << "job " << pol[i].first << " diverges from fifo: "
                << pol[i].second << " steps vs job "
                << fifo[i].first << " with " << fifo[i].second;
            return msg.str();
        }
    }
    return std::string("policy and fifo outcomes diverge");
}

std::string
describe(const SchedFuzzFailure &f)
{
    std::ostringstream os;
    os << "scheduler invariant violated\n"
       << "  seed:    " << f.seed << "\n"
       << "  policy:  " << clustersim::toString(f.policy) << "\n"
       << "  message: " << f.message << "\n"
       << "  stream:  " << f.stream_jobs << " jobs, shrunk to "
       << f.shrunk.size() << "\n";
    for (const JobRequest &req : f.shrunk) {
        os << "    job " << req.job.id << " arch="
           << workload::toString(req.job.arch)
           << " cnodes=" << req.job.num_cnodes << " submit="
           << req.submit_time << " steps=" << req.num_steps << "\n";
    }
    os << "  repro:   " << f.repro << "\n";
    return os.str();
}

std::optional<SchedFuzzFailure>
fuzzPolicies(const JobGenerator &gen, uint64_t base_seed, int count,
             const std::vector<clustersim::Policy> &policies,
             const SchedulerConfig &cfg, const SchedStreamOptions &opt,
             const std::string &repro_template)
{
    core::AnalyticalModel model(hw::paiCluster());
    SchedulerConfig fifo_cfg = cfg;
    fifo_cfg.policy = clustersim::Policy::Fifo;
    fifo_cfg.record_job_log = false;

    for (int i = 0; i < count; ++i) {
        uint64_t seed = base_seed + static_cast<uint64_t>(i);
        auto requests =
            genRequests(gen, seed, opt, cfg.num_servers);

        for (clustersim::Policy policy : policies) {
            SchedulerConfig run_cfg = cfg;
            run_cfg.policy = policy;
            run_cfg.record_job_log = false;

            auto failsWith = [&](const std::vector<JobRequest> &rs)
                -> std::optional<std::string> {
                ClusterOutcome po =
                    ClusterScheduler(run_cfg, model).run(rs);
                if (auto m = checkSchedInvariants(rs, run_cfg, po))
                    return m;
                ClusterOutcome fo =
                    ClusterScheduler(fifo_cfg, model).run(rs);
                return checkAgainstFifo(po, fo);
            };

            auto message = failsWith(requests);
            if (!message)
                continue;

            // Shrink: greedily remove chunks (halving the chunk size
            // down to single requests) while the violation persists.
            std::vector<JobRequest> cur = requests;
            for (size_t chunk = std::max<size_t>(1, cur.size() / 2);
                 ;) {
                for (size_t pos = 0; pos + chunk <= cur.size();) {
                    std::vector<JobRequest> cand;
                    cand.reserve(cur.size() - chunk);
                    cand.insert(cand.end(), cur.begin(),
                                cur.begin() +
                                    static_cast<ptrdiff_t>(pos));
                    cand.insert(cand.end(),
                                cur.begin() + static_cast<ptrdiff_t>(
                                                  pos + chunk),
                                cur.end());
                    if (auto m = failsWith(cand)) {
                        cur = std::move(cand);
                        message = m;
                    } else {
                        pos += chunk;
                    }
                }
                if (chunk == 1)
                    break;
                chunk = std::max<size_t>(1, chunk / 2);
            }

            SchedFuzzFailure f;
            f.seed = seed;
            f.policy = policy;
            f.message = *message;
            f.stream_jobs = requests.size();
            f.shrunk = std::move(cur);
            f.repro = repro_template;
            auto mark = f.repro.find("{seed}");
            if (mark != std::string::npos)
                f.repro.replace(mark, 6, std::to_string(seed));
            return f;
        }
    }
    return std::nullopt;
}

} // namespace paichar::testkit
