/**
 * @file
 * `paib`: a versioned binary columnar trace format for million-job
 * populations, built for load speed — one read, a checksum sweep, and
 * a bulk copy per column; no text parsing at all.
 *
 * Layout (all integers and doubles little-endian, no padding):
 *
 *   offset 0   char[4]   magic "PAIB"
 *   offset 4   uint32    format version (currently 1)
 *   offset 8   uint64    job count N
 *   offset 16  column arrays, each N elements, in schema order:
 *                int64   id
 *                uint8   arch        (workload::ArchType enum value)
 *                int32   num_cnodes
 *                int32   num_ps
 *                double  batch_size, flop_count, mem_access_bytes,
 *                        input_bytes, comm_bytes,
 *                        embedding_comm_bytes, dense_weight_bytes,
 *                        embedding_weight_bytes
 *   last 8     uint64    FNV-1a-64 (word-folded) over every
 *                        preceding byte
 *
 * Doubles are stored as raw IEEE-754 bits, so the round trip is exact
 * for every finite value (CSV shares this guarantee via shortest
 * round-trip formatting, but `paib` is ~3x smaller and ~10x faster).
 */

#ifndef PAICHAR_TRACE_BINARY_TRACE_H
#define PAICHAR_TRACE_BINARY_TRACE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_io.h"
#include "workload/job_store.h"
#include "workload/training_job.h"

namespace paichar::trace {

/** First bytes of every `paib` payload. */
inline constexpr char kBinaryMagic[4] = {'P', 'A', 'I', 'B'};

/** Current (and only) `paib` format version. */
inline constexpr uint32_t kBinaryVersion = 1;

/** True when @p data starts with the `paib` magic. */
bool looksBinary(std::string_view data);

/** Serialize jobs to a `paib` payload. */
std::string toBinary(const std::vector<workload::TrainingJob> &jobs);

/**
 * Parse a `paib` payload. Malformed input — bad magic, unsupported
 * version, truncated columns, checksum mismatch, or invalid job
 * values — yields a clean ParseResult error, never a crash.
 */
ParseResult fromBinary(std::string_view data);

/**
 * Envelope of a validated `paib` payload: the job count and the
 * column base pointers (into the caller's buffer). Shared between
 * fromBinary() and the zero-copy store loader so both reject
 * malformed input with identical error text.
 */
struct BinaryEnvelope
{
    bool ok = false;
    /** fromBinary()-identical error text when !ok. */
    std::string error;
    size_t count = 0;
    workload::JobColumns columns;
};

/**
 * Validate magic, version, size and checksum of @p data and locate
 * the columns. No row values are inspected (see validateBinaryRow).
 */
BinaryEnvelope validateBinaryEnvelope(std::string_view data);

/**
 * Validate row @p i of a validated envelope's columns. Returns the
 * empty string when the row is well-formed, else the exact
 * fromBinary() error text ("job N: ...").
 */
std::string validateBinaryRow(const workload::JobColumns &cols,
                              size_t i);

} // namespace paichar::trace

#endif // PAICHAR_TRACE_BINARY_TRACE_H
