#include "synthetic_cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hw/units.h"

namespace paichar::trace {

using hw::kGB;
using workload::ArchType;
using workload::TrainingJob;
using workload::WorkloadFeatures;

CalibrationProfile
CalibrationProfile::paiDec2018()
{
    // The member initializers *are* the tuned values; see the header
    // for the published aggregate each knob targets.
    return CalibrationProfile{};
}

SyntheticClusterGenerator::SyntheticClusterGenerator(
    const CalibrationProfile &profile, const hw::ClusterSpec &base,
    uint64_t seed)
    : profile_(profile), base_(base), seed_(seed)
{
    double mix = profile_.frac_1w1g + profile_.frac_1wng +
                 profile_.frac_ps_worker;
    assert(std::abs(mix - 1.0) < 1e-9 &&
           "architecture mix must sum to 1");
    (void)mix;
}

SyntheticClusterGenerator::SyntheticClusterGenerator(uint64_t seed)
    : SyntheticClusterGenerator(CalibrationProfile::paiDec2018(),
                                hw::paiCluster(), seed)
{
}

stats::Rng
SyntheticClusterGenerator::jobRng(int64_t id) const
{
    // Hash (seed, id) into a scattered SplitMix64 start state so job
    // i's stream is independent of how many draws job i-1 made --
    // this is what makes generation order-free and parallelizable.
    // Two split rounds scramble the (seed, id) lattice before any
    // sample is drawn from the stream.
    stats::Rng h(seed_ ^ (0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(id) + 1)));
    return h.split().split();
}

std::vector<TrainingJob>
SyntheticClusterGenerator::generate(size_t count,
                                    runtime::ThreadPool *pool) const
{
    std::vector<TrainingJob> jobs(count);
    runtime::parallelFor(pool, count, [&](size_t i) {
        jobs[i] = generateJob(static_cast<int64_t>(i));
    });
    return jobs;
}

TrainingJob
SyntheticClusterGenerator::generateJob(int64_t id) const
{
    stats::Rng rng = jobRng(id);
    size_t pick = rng.categorical({profile_.frac_1w1g,
                                   profile_.frac_1wng,
                                   profile_.frac_ps_worker});
    switch (pick) {
      case 0:
        return gen1w1g(id, rng);
      case 1:
        return gen1wng(id, rng);
      default:
        return genPsWorker(id, rng);
    }
}

double
SyntheticClusterGenerator::sampleFraction(stats::Rng &rng,
                                          const FractionDist &d) const
{
    return rng.betaMean(d.mean, d.concentration);
}

double
SyntheticClusterGenerator::sampleStepTime(stats::Rng &rng) const
{
    return rng.logNormal(std::log(profile_.step_time_median),
                         profile_.step_time_sigma);
}

double
SyntheticClusterGenerator::sampleBatch(stats::Rng &rng) const
{
    double log2b =
        rng.uniform(profile_.batch_log2_lo, profile_.batch_log2_hi);
    return std::round(std::pow(2.0, log2b));
}

void
SyntheticClusterGenerator::fillCompute(WorkloadFeatures &f,
                                       double step_time,
                                       double frac_compute,
                                       double frac_mem) const
{
    const double eff = base_.efficiency;
    f.flop_count =
        frac_compute * step_time * base_.server.gpu.peak_flops * eff;
    f.mem_access_bytes =
        frac_mem * step_time * base_.server.gpu.mem_bandwidth * eff;
}

TrainingJob
SyntheticClusterGenerator::gen1w1g(int64_t id, stats::Rng &rng) const
{
    TrainingJob job;
    job.id = id;
    job.arch = ArchType::OneWorkerOneGpu;
    job.num_cnodes = 1;

    double t = sampleStepTime(rng);
    double fd;
    if (rng.bernoulli(profile_.d1w1g_data_heavy_prob)) {
        fd = rng.uniform(profile_.d1w1g_data_heavy_lo,
                         profile_.d1w1g_data_heavy_hi);
    } else {
        fd = sampleFraction(rng, profile_.d1w1g_data);
    }
    double r = sampleFraction(rng, profile_.compute_bound_ratio);
    double fcb = (1.0 - fd) * r;
    double fmb = (1.0 - fd) * (1.0 - r);

    const double eff = base_.efficiency;
    WorkloadFeatures &f = job.features;
    f.batch_size = sampleBatch(rng);
    f.input_bytes = fd * t * base_.server.pcie_bandwidth * eff;
    fillCompute(f, t, fcb, fmb);
    f.comm_bytes = 0.0;

    double w = rng.logNormal(std::log(profile_.w1g_weight_median_gb),
                             profile_.w1g_weight_sigma) *
               kGB;
    f.dense_weight_bytes =
        std::clamp(w, profile_.weight_floor_bytes,
                   profile_.w1g_weight_cap_gb * kGB);
    f.embedding_weight_bytes = 0.0;
    return job;
}

TrainingJob
SyntheticClusterGenerator::gen1wng(int64_t id, stats::Rng &rng) const
{
    TrainingJob job;
    job.id = id;
    job.arch = ArchType::OneWorkerMultiGpu;
    std::vector<double> w(profile_.onewng_cnode_weights);
    job.num_cnodes = profile_.onewng_cnodes[rng.categorical(w)];

    double t = sampleStepTime(rng);
    double fd = sampleFraction(rng, profile_.d1wng_data);
    double fw = sampleFraction(rng, profile_.d1wng_weight) * (1.0 - fd);
    double r = sampleFraction(rng, profile_.compute_bound_ratio);
    double rem = 1.0 - fd - fw;
    double fcb = rem * r;
    double fmb = rem * (1.0 - r);

    const double eff = base_.efficiency;
    const double pcie = base_.server.pcie_bandwidth * eff;
    const int n = job.num_cnodes;
    WorkloadFeatures &f = job.features;
    f.batch_size = sampleBatch(rng);
    // Td = Sd * n / pcie  =>  Sd = fd * t * pcie / n; same for Tw.
    f.input_bytes = fd * t * pcie / n;
    f.comm_bytes = fw * t * pcie / n;
    fillCompute(f, t, fcb, fmb);

    double ratio = rng.uniform(profile_.dense_weight_ratio_lo,
                               profile_.dense_weight_ratio_hi);
    f.dense_weight_bytes =
        std::max(profile_.weight_floor_bytes, f.comm_bytes * ratio);
    f.embedding_weight_bytes = 0.0;
    return job;
}

TrainingJob
SyntheticClusterGenerator::genPsWorker(int64_t id,
                                       stats::Rng &rng) const
{
    TrainingJob job;
    job.id = id;
    job.arch = ArchType::PsWorker;

    // cNode count: lognormal body + Pareto tail (the hundreds-to-
    // thousands commodity-embedding / search jobs of Sec III-A).
    double n;
    if (rng.bernoulli(profile_.ps_cnodes_tail_prob)) {
        n = rng.pareto(profile_.ps_cnodes_tail_xm,
                       profile_.ps_cnodes_tail_alpha);
    } else {
        n = rng.logNormal(std::log(profile_.ps_cnodes_median),
                          profile_.ps_cnodes_sigma);
    }
    job.num_cnodes = static_cast<int>(std::clamp(
        std::round(n), 1.0,
        static_cast<double>(profile_.ps_cnodes_max)));
    job.num_ps = std::max(
        1, static_cast<int>(std::round(
               job.num_cnodes * rng.uniform(profile_.ps_nodes_frac_lo,
                                            profile_.ps_nodes_frac_hi))));

    double t = sampleStepTime(rng);
    // I/O-heavy PS jobs occur among small jobs only (large jobs are
    // the comm-bound embedding/search workloads of Sec III-A).
    double fd;
    bool may_be_heavy =
        job.num_cnodes <= profile_.ps_data_heavy_max_cnodes;
    if (may_be_heavy && rng.bernoulli(profile_.ps_data_heavy_prob)) {
        fd = rng.uniform(profile_.ps_data_heavy_lo,
                         profile_.ps_data_heavy_hi);
    } else {
        fd = sampleFraction(rng, profile_.dps_data);
    }
    // Communication share grows with job scale (Sec III-B: workloads
    // with larger cNode numbers suffer more from communication).
    double mean_fw = std::clamp(
        profile_.ps_weight_mean_base +
            profile_.ps_weight_mean_slope *
                std::log2(static_cast<double>(job.num_cnodes)),
        profile_.ps_weight_mean_lo, profile_.ps_weight_mean_hi);
    double fw = rng.betaMean(mean_fw, profile_.ps_weight_concentration) *
                (1.0 - fd);
    double r = sampleFraction(rng, profile_.compute_bound_ratio);
    double rem = 1.0 - fd - fw;
    double fcb = rem * r;
    double fmb = rem * (1.0 - r);

    const double eff = base_.efficiency;
    const double pcie = base_.server.pcie_bandwidth * eff;
    const double eth = base_.ethernet_bandwidth * eff;
    WorkloadFeatures &f = job.features;
    f.batch_size = sampleBatch(rng);
    f.input_bytes = fd * t * pcie; // one replica per server: no sharing
    // Tw = Sw/eth + Sw/pcie  =>  Sw = fw * t / (1/eth + 1/pcie).
    f.comm_bytes = fw * t / (1.0 / eth + 1.0 / pcie);
    fillCompute(f, t, fcb, fmb);

    if (rng.bernoulli(profile_.ps_sparse_prob)) {
        // Embedding-heavy job: traffic covers only the accessed rows,
        // so the resident table dwarfs the per-step volume.
        double emb_share = rng.uniform(profile_.ps_emb_traffic_lo,
                                       profile_.ps_emb_traffic_hi);
        double access = std::clamp(
            rng.logNormal(std::log(profile_.ps_access_frac_median),
                          profile_.ps_access_frac_sigma),
            profile_.ps_access_frac_min, profile_.ps_access_frac_max);
        double ratio = rng.uniform(profile_.dense_weight_ratio_lo,
                                   profile_.dense_weight_ratio_hi);
        f.dense_weight_bytes =
            std::max(profile_.weight_floor_bytes,
                     f.comm_bytes * (1.0 - emb_share) * ratio);
        f.embedding_weight_bytes =
            std::min(f.comm_bytes * emb_share / access,
                     profile_.emb_weight_cap_gb * kGB);
    } else {
        double ratio = rng.uniform(profile_.dense_weight_ratio_lo,
                                   profile_.dense_weight_ratio_hi);
        f.dense_weight_bytes =
            std::max(profile_.weight_floor_bytes, f.comm_bytes * ratio);
        f.embedding_weight_bytes = 0.0;
    }
    return job;
}

} // namespace paichar::trace
