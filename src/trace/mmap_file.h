/**
 * @file
 * Read-only memory-mapped file (RAII). The zero-copy trace path maps
 * a `paib` file and hands its pages straight to the columnar
 * JobStore; the kernel then faults in only the pages the analyses
 * actually touch, and a 100M-job trace never transits a read()
 * buffer.
 *
 * On platforms without mmap (or when mapping fails — pipes, procfs,
 * exotic filesystems) callers fall back to buffered reads; see
 * trace::readTraceStore.
 */

#ifndef PAICHAR_TRACE_MMAP_FILE_H
#define PAICHAR_TRACE_MMAP_FILE_H

#include <optional>
#include <string>
#include <string_view>

namespace paichar::trace {

/** A read-only mapping of a regular file. Move-only. */
class MappedFile
{
  public:
    /**
     * Map @p path read-only. nullopt when the file cannot be opened
     * or mapped (the caller should fall back to buffered reads; a
     * nonexistent path fails here too). An empty file maps to a
     * valid empty view.
     */
    static std::optional<MappedFile> map(const std::string &path);

    MappedFile(MappedFile &&o) noexcept;
    MappedFile &operator=(MappedFile &&o) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    ~MappedFile();

    /** The mapped bytes. */
    std::string_view view() const { return {data_, size_}; }

    size_t size() const { return size_; }

  private:
    MappedFile() = default;

    const char *data_ = nullptr;
    size_t size_ = 0;
};

} // namespace paichar::trace

#endif // PAICHAR_TRACE_MMAP_FILE_H
