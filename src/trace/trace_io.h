/**
 * @file
 * Trace serialization: read/write job populations as CSV or as the
 * `paib` binary columnar format, so the analysis pipeline can run on
 * externally collected traces (the production use case) as well as
 * synthetic ones — at million-job scale.
 *
 * CSV schema (one header line, then one line per job):
 *   id,arch,num_cnodes,num_ps,batch_size,flop_count,
 *   mem_access_bytes,input_bytes,comm_bytes,embedding_comm_bytes,
 *   dense_weight_bytes,embedding_weight_bytes
 *
 * `arch` uses the paper-style names ("1w1g", "PS/Worker", ...); all
 * quantities are plain decimal numbers in base units, written in the
 * shortest form that round-trips the exact double value. Lines end in
 * LF; CRLF input is accepted; blank lines are skipped.
 *
 * Parsing is single-pass and allocation-free per field
 * (std::string_view scanning + std::from_chars) and optionally
 * parallel: the buffer is split into line-aligned chunks parsed
 * concurrently and spliced in index order, so jobs *and* error line
 * numbers are byte-identical to the serial path for any thread count.
 *
 * The binary format (binary_trace.h) is detected by magic, so
 * readTraceFile() accepts either format transparently.
 */

#ifndef PAICHAR_TRACE_TRACE_IO_H
#define PAICHAR_TRACE_TRACE_IO_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/job_store.h"
#include "workload/training_job.h"

namespace paichar::runtime {
class ThreadPool;
} // namespace paichar::runtime

namespace paichar::trace {

/** Outcome of parsing a trace. */
struct ParseResult
{
    bool ok = false;
    /** Human-readable error with a 1-based line number when !ok. */
    std::string error;
    std::vector<workload::TrainingJob> jobs;
};

/** On-disk trace encodings. */
enum class TraceFormat
{
    /** Human-readable CSV (the interchange default). */
    Csv,
    /** `paib` binary columnar (binary_trace.h); ~3x smaller, ~10x
        faster to load. */
    Binary,
};

/** CLI spelling: "csv" or "bin". */
std::string toString(TraceFormat f);

/** Inverse of toString(TraceFormat); nullopt for unknown names. */
std::optional<TraceFormat> traceFormatFromString(std::string_view name);

/** Serialize jobs to CSV (with header). */
std::string toCsv(const std::vector<workload::TrainingJob> &jobs);

/**
 * Parse a CSV trace; validates header, field count and values.
 *
 * When @p pool is non-null the body is parsed in parallel over
 * line-aligned chunks; the result (jobs and any error message) is
 * byte-identical to the serial path for every pool size.
 */
ParseResult fromCsv(std::string_view text,
                    runtime::ThreadPool *pool = nullptr);

/** Write a trace to a file in @p format; false on I/O failure. */
bool writeTraceFile(const std::string &path,
                    const std::vector<workload::TrainingJob> &jobs,
                    TraceFormat format);

/**
 * Read a trace from a file, auto-detecting the format by magic:
 * `paib` payloads take the binary loader, everything else parses as
 * CSV (on @p pool when given).
 */
ParseResult readTraceFile(const std::string &path,
                          runtime::ThreadPool *pool = nullptr);

/** Outcome of loading a trace into a JobStore. */
struct StoreResult
{
    bool ok = false;
    /** readTraceFile()-identical error text when !ok. */
    std::string error;
    workload::JobStore store;
};

/**
 * Read a trace into a JobStore, zero-copy where possible.
 *
 * `paib` files are memory-mapped and validated in place (rows in
 * parallel on @p pool); the returned store borrows the mapping's
 * columns and keeps it alive, so jobs are assembled on access and a
 * 100M-job trace costs no per-job heap state. CSV files (and any
 * file that cannot be mapped) take the buffered readTraceFile()
 * path and come back as an owned store.
 *
 * Rejection behavior is identical to readTraceFile(): the same
 * malformed inputs fail with the same error text.
 */
StoreResult readTraceStore(const std::string &path,
                           runtime::ThreadPool *pool = nullptr);

/** Write a CSV trace to a file; returns false on I/O failure. */
bool writeCsvFile(const std::string &path,
                  const std::vector<workload::TrainingJob> &jobs);

/** Read a CSV trace from a file (no format auto-detection). */
ParseResult readCsvFile(const std::string &path);

} // namespace paichar::trace

#endif // PAICHAR_TRACE_TRACE_IO_H
