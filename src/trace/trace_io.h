/**
 * @file
 * Trace serialization: read/write job populations as CSV, so the
 * analysis pipeline can run on externally collected traces (the
 * production use case) as well as synthetic ones.
 *
 * Schema (one header line, then one line per job):
 *   id,arch,num_cnodes,num_ps,batch_size,flop_count,
 *   mem_access_bytes,input_bytes,comm_bytes,embedding_comm_bytes,
 *   dense_weight_bytes,embedding_weight_bytes
 *
 * `arch` uses the paper-style names ("1w1g", "PS/Worker", ...); all
 * quantities are plain decimal numbers in base units.
 */

#ifndef PAICHAR_TRACE_TRACE_IO_H
#define PAICHAR_TRACE_TRACE_IO_H

#include <string>
#include <vector>

#include "workload/training_job.h"

namespace paichar::trace {

/** Outcome of parsing a trace. */
struct ParseResult
{
    bool ok = false;
    /** Human-readable error with a 1-based line number when !ok. */
    std::string error;
    std::vector<workload::TrainingJob> jobs;
};

/** Serialize jobs to CSV (with header). */
std::string toCsv(const std::vector<workload::TrainingJob> &jobs);

/** Parse a CSV trace; validates header, field count and values. */
ParseResult fromCsv(const std::string &text);

/** Write a CSV trace to a file; returns false on I/O failure. */
bool writeCsvFile(const std::string &path,
                  const std::vector<workload::TrainingJob> &jobs);

/** Read a CSV trace from a file. */
ParseResult readCsvFile(const std::string &path);

} // namespace paichar::trace

#endif // PAICHAR_TRACE_TRACE_IO_H
