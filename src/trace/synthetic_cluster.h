/**
 * @file
 * Synthetic cluster-trace generation.
 *
 * Strategy: per job, sample (a) the architecture and scale, (b) a step
 * time and its component-share vector from the calibrated
 * distributions, then (c) *invert* the analytical model to recover the
 * fundamental demands (FLOPs, memory-access bytes, input bytes, comm
 * bytes) that would produce exactly that breakdown on the base
 * hardware. Model sizes are then derived from the communication volume
 * (dense jobs move ~their full parameter set per step; sparse
 * embedding jobs move only the accessed rows).
 *
 * Inversion, rather than sampling raw demands, makes the published
 * collective statistics directly controllable while still exercising
 * the exact forward analysis path every experiment uses: generated
 * demands are architecture-independent, so projections and hardware
 * sweeps re-evaluate them under changed configurations faithfully.
 *
 * Each job draws from its own RNG stream derived from (seed, id), so
 * generation is embarrassingly parallel and a trace is a pure
 * function of the seed: the same bytes come out for any thread count
 * and for any generate()/generateJob() call pattern.
 */

#ifndef PAICHAR_TRACE_SYNTHETIC_CLUSTER_H
#define PAICHAR_TRACE_SYNTHETIC_CLUSTER_H

#include <cstdint>
#include <vector>

#include "hw/hardware_config.h"
#include "runtime/parallel.h"
#include "stats/rng.h"
#include "trace/calibration_profile.h"
#include "workload/training_job.h"

namespace paichar::trace {

/** Generates a synthetic PAI job population. */
class SyntheticClusterGenerator
{
  public:
    /**
     * @param profile Calibration knobs (see CalibrationProfile).
     * @param base    Hardware configuration the share-vector inversion
     *                assumes (the paper's Table I cluster).
     * @param seed    RNG seed; equal seeds give equal traces.
     */
    SyntheticClusterGenerator(const CalibrationProfile &profile,
                              const hw::ClusterSpec &base,
                              uint64_t seed);

    /** Convenience: paiDec2018 profile on the Table I cluster. */
    explicit SyntheticClusterGenerator(uint64_t seed);

    /**
     * Generate @p count jobs with ids 0..count-1, fanning out over
     * @p pool (nullptr = serial). The trace depends only on the seed,
     * never on the thread count.
     */
    std::vector<workload::TrainingJob>
    generate(size_t count,
             runtime::ThreadPool *pool = runtime::globalPool()) const;

    /** Generate a single job with the given id. */
    workload::TrainingJob generateJob(int64_t id) const;

    /** The profile in use. */
    const CalibrationProfile &profile() const { return profile_; }

  private:
    /** The job's own RNG stream, a pure function of (seed, id). */
    stats::Rng jobRng(int64_t id) const;

    workload::TrainingJob gen1w1g(int64_t id, stats::Rng &rng) const;
    workload::TrainingJob gen1wng(int64_t id, stats::Rng &rng) const;
    workload::TrainingJob genPsWorker(int64_t id,
                                      stats::Rng &rng) const;

    /** Sample from a FractionDist, clamped into (0, 1). */
    double sampleFraction(stats::Rng &rng, const FractionDist &d) const;

    /** Sample a step time in seconds. */
    double sampleStepTime(stats::Rng &rng) const;

    /** Sample a batch size. */
    double sampleBatch(stats::Rng &rng) const;

    /**
     * Fill compute demands given total time and the compute-bound /
     * memory-bound shares, inverting Eq 1.
     */
    void fillCompute(workload::WorkloadFeatures &f, double step_time,
                     double frac_compute, double frac_mem) const;

    CalibrationProfile profile_;
    hw::ClusterSpec base_;
    uint64_t seed_;
};

} // namespace paichar::trace

#endif // PAICHAR_TRACE_SYNTHETIC_CLUSTER_H
