#include "mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PAICHAR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace paichar::trace {

std::optional<MappedFile>
MappedFile::map(const std::string &path)
{
#if PAICHAR_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return std::nullopt;
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return std::nullopt;
    }
    MappedFile f;
    f.size_ = static_cast<size_t>(st.st_size);
    if (f.size_ > 0) {
        void *p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE,
                         fd, 0);
        if (p == MAP_FAILED) {
            ::close(fd);
            return std::nullopt;
        }
        // The trace loaders sweep the whole payload once (checksum),
        // so ask for aggressive readahead up front.
        ::madvise(p, f.size_, MADV_WILLNEED);
        f.data_ = static_cast<const char *>(p);
    }
    // The mapping outlives the descriptor.
    ::close(fd);
    return f;
#else
    (void)path;
    return std::nullopt;
#endif
}

MappedFile::MappedFile(MappedFile &&o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      size_(std::exchange(o.size_, 0))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&o) noexcept
{
    if (this != &o) {
        this->~MappedFile();
        data_ = std::exchange(o.data_, nullptr);
        size_ = std::exchange(o.size_, 0);
    }
    return *this;
}

MappedFile::~MappedFile()
{
#if PAICHAR_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<char *>(data_), size_);
#endif
    data_ = nullptr;
    size_ = 0;
}

} // namespace paichar::trace
