#include "trace_io.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/obs.h"
#include "runtime/parallel.h"
#include "trace/binary_trace.h"
#include "trace/mmap_file.h"

namespace paichar::trace {

using workload::TrainingJob;

namespace {

constexpr std::string_view kHeader =
    "id,arch,num_cnodes,num_ps,batch_size,flop_count,"
    "mem_access_bytes,input_bytes,comm_bytes,embedding_comm_bytes,"
    "dense_weight_bytes,embedding_weight_bytes";

constexpr size_t kFields = 12;

/** Chunks below this size are not worth a pool dispatch. */
constexpr size_t kMinChunkBytes = size_t{64} * 1024;

bool
parseDouble(std::string_view s, double &out)
{
    // from_chars is locale-free and rejects leading whitespace and
    // '+' signs, so the accepted grammar is exactly the one toCsv
    // emits; "inf"/"nan" parse but fail the finiteness check.
    const char *end = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(s.data(), end, out);
    return ec == std::errc() && ptr == end && std::isfinite(out);
}

bool
parseInt(std::string_view s, int64_t &out)
{
    const char *end = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(s.data(), end, out);
    return ec == std::errc() && ptr == end;
}

ParseResult
fail(size_t line_no, const std::string &what)
{
    ParseResult r;
    r.ok = false;
    r.error = "line " + std::to_string(line_no) + ": " + what;
    return r;
}

/**
 * Append @p v in the shortest form that parses back to the exact
 * same double -- always via to_chars, so every number in a CSV row
 * carries the round-trip guarantee (a %.17g fallback used to live
 * here and emitted a *different* spelling for the same value). The
 * 40-byte buffer has headroom over the 24-character worst case of
 * shortest-form doubles, so to_chars cannot fail; the defensive
 * throw keeps the failure mode defined (never a truncated row) if
 * that invariant is ever broken.
 */
void
appendNumber(std::string &out, double v)
{
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    if (res.ec != std::errc())
        throw std::logic_error(
            "toCsv: to_chars overflowed its buffer");
    out.append(buf, res.ptr);
}

void
appendNumber(std::string &out, int64_t v)
{
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

/**
 * Everything one line-aligned chunk of the body produces. Chunks are
 * parsed independently and spliced in index order, so the combined
 * jobs — and the first error's global line number — are identical to
 * a serial scan no matter how many chunks or threads were used.
 */
struct ChunkOutcome
{
    std::vector<TrainingJob> jobs;
    /**
     * Lines consumed: all lines in the chunk (including blank ones),
     * or, when has_error, the 1-based index of the offending line
     * within the chunk.
     */
    size_t lines = 0;
    bool has_error = false;
    /** Error text without the "line N: " prefix. */
    std::string error;
};

/**
 * Hot path: parse one row by walking a pointer through [p, end),
 * letting from_chars do the delimiting (no field pre-split, no
 * allocation). Returns the position just past the row's newline on
 * success, nullptr on *any* mismatch — the caller then re-parses the
 * line on the slow path to produce the exact diagnostic.
 *
 * @p end is the chunk end; a scan can only reach a later line of the
 * same chunk through a malformed row, in which case the arch lookup
 * (names never contain '\n') or a delimiter check fails and the slow
 * path takes over with the true line extent.
 */
/**
 * Branchy arch lookup for the hot path: the six names have nearly
 * unique lengths, so one length dispatch plus one memcmp decides.
 * Must accept exactly the archFromString() vocabulary.
 */
bool
fastArch(const char *p, size_t len, workload::ArchType &out)
{
    using workload::ArchType;
    switch (len) {
      case 4:
        if (std::memcmp(p, "1w1g", 4) == 0) {
            out = ArchType::OneWorkerOneGpu;
            return true;
        }
        if (std::memcmp(p, "1wng", 4) == 0) {
            out = ArchType::OneWorkerMultiGpu;
            return true;
        }
        return false;
      case 5:
        out = ArchType::Pearl;
        return std::memcmp(p, "PEARL", 5) == 0;
      case 9:
        out = ArchType::PsWorker;
        return std::memcmp(p, "PS/Worker", 9) == 0;
      case 15:
        out = ArchType::AllReduceLocal;
        return std::memcmp(p, "AllReduce-Local", 15) == 0;
      case 17:
        out = ArchType::AllReduceCluster;
        return std::memcmp(p, "AllReduce-Cluster", 17) == 0;
      default:
        return false;
    }
}

const char *
fastParseLine(const char *p, const char *end, TrainingJob &j)
{
    int64_t iv;
    auto ri = std::from_chars(p, end, iv);
    if (ri.ec != std::errc() || ri.ptr == end || *ri.ptr != ',')
        return nullptr;
    j.id = iv;
    p = ri.ptr + 1;

    const char *c = static_cast<const char *>(
        std::memchr(p, ',', static_cast<size_t>(end - p)));
    if (!c || !fastArch(p, static_cast<size_t>(c - p), j.arch))
        return nullptr;
    p = c + 1;

    ri = std::from_chars(p, end, iv);
    if (ri.ec != std::errc() || ri.ptr == end || *ri.ptr != ',' ||
        iv < 1)
        return nullptr;
    j.num_cnodes = static_cast<int>(iv);
    p = ri.ptr + 1;

    ri = std::from_chars(p, end, iv);
    if (ri.ec != std::errc() || ri.ptr == end || *ri.ptr != ',' ||
        iv < 0)
        return nullptr;
    j.num_ps = static_cast<int>(iv);
    p = ri.ptr + 1;

    // Unrolled so each value lands straight in its member instead of
    // through a pointer table the optimizer cannot hoist.
#define PAICHAR_PARSE_FEATURE(member, delim)                          \
    {                                                                 \
        auto rd = std::from_chars(p, end, j.features.member);         \
        if (rd.ec != std::errc() ||                                   \
            !std::isfinite(j.features.member))                        \
            return nullptr;                                           \
        p = rd.ptr;                                                   \
        if (delim) {                                                  \
            if (p == end || *p != ',')                                \
                return nullptr;                                       \
            ++p;                                                      \
        }                                                             \
    }
    PAICHAR_PARSE_FEATURE(batch_size, true)
    PAICHAR_PARSE_FEATURE(flop_count, true)
    PAICHAR_PARSE_FEATURE(mem_access_bytes, true)
    PAICHAR_PARSE_FEATURE(input_bytes, true)
    PAICHAR_PARSE_FEATURE(comm_bytes, true)
    PAICHAR_PARSE_FEATURE(embedding_comm_bytes, true)
    PAICHAR_PARSE_FEATURE(dense_weight_bytes, true)
    PAICHAR_PARSE_FEATURE(embedding_weight_bytes, false)
#undef PAICHAR_PARSE_FEATURE
    // Row terminator: end of chunk, LF, or CRLF.
    if (p != end) {
        if (*p == '\n') {
            ++p;
        } else if (*p == '\r' && (p + 1 == end || p[1] == '\n')) {
            p += (p + 1 == end) ? 1 : 2;
        } else {
            return nullptr; // extra fields or trailing junk
        }
    }
    if (!j.features.valid())
        return nullptr;
    return p;
}

/**
 * Cold path: re-parse a row the fast path rejected, with the field
 * splitting needed for precise messages ("expected 12 fields, got
 * 9", the offending field's text, ...). Returns the error text
 * (without the "line N: " prefix), or empty if the line is valid
 * after all — unreachable in practice since both paths accept the
 * same grammar, but then the parse simply proceeds with @p j.
 */
std::string
parseLineSlow(std::string_view line, TrainingJob &j)
{
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);

    std::array<std::string_view, kFields> fields;
    size_t nfields = 0;
    size_t start = 0;
    bool overflow = false;
    for (size_t i = 0;; ++i) {
        if (i == line.size() || line[i] == ',') {
            if (nfields < kFields)
                fields[nfields] = line.substr(start, i - start);
            else
                overflow = true;
            ++nfields;
            start = i + 1;
            if (i == line.size())
                break;
        }
    }
    if (overflow || nfields != kFields) {
        return "expected " + std::to_string(kFields) +
               " fields, got " + std::to_string(nfields);
    }

    int64_t iv;
    if (!parseInt(fields[0], iv))
        return "bad id '" + std::string(fields[0]) + "'";
    j.id = iv;
    auto arch = workload::archFromString(fields[1]);
    if (!arch)
        return "unknown architecture '" + std::string(fields[1]) +
               "'";
    j.arch = *arch;
    if (!parseInt(fields[2], iv) || iv < 1)
        return "bad num_cnodes '" + std::string(fields[2]) + "'";
    j.num_cnodes = static_cast<int>(iv);
    if (!parseInt(fields[3], iv) || iv < 0)
        return "bad num_ps '" + std::string(fields[3]) + "'";
    j.num_ps = static_cast<int>(iv);

    double *slots[] = {&j.features.batch_size,
                       &j.features.flop_count,
                       &j.features.mem_access_bytes,
                       &j.features.input_bytes,
                       &j.features.comm_bytes,
                       &j.features.embedding_comm_bytes,
                       &j.features.dense_weight_bytes,
                       &j.features.embedding_weight_bytes};
    for (size_t s = 0; s < 8; ++s) {
        if (!parseDouble(fields[4 + s], *slots[s]))
            return "bad numeric field '" +
                   std::string(fields[4 + s]) + "'";
    }
    if (!j.features.valid())
        return "features fail validation";
    return {};
}

/** Parse body[lo, hi); lo and hi sit on line starts (or at the end). */
ChunkOutcome
parseChunk(std::string_view body, size_t lo, size_t hi)
{
    ChunkOutcome out;
    // Rows are ~90-180 bytes; an 80-byte estimate over-reserves
    // slightly instead of reallocating mid-chunk.
    out.jobs.reserve((hi - lo) / 80 + 1);

    const char *p = body.data() + lo;
    const char *end = body.data() + hi;
    while (p < end) {
        ++out.lines;
        // Blank lines ("" or lone "\r") are skipped but counted.
        if (*p == '\n') {
            ++p;
            continue;
        }
        if (*p == '\r' && (p + 1 == end || p[1] == '\n')) {
            p += (p + 1 == end) ? 1 : 2;
            continue;
        }

        TrainingJob &j = out.jobs.emplace_back();
        if (const char *next = fastParseLine(p, end, j)) {
            p = next;
            continue;
        }

        const char *nl = static_cast<const char *>(std::memchr(
            p, '\n', static_cast<size_t>(end - p)));
        std::string_view line(
            p, static_cast<size_t>((nl ? nl : end) - p));
        std::string err = parseLineSlow(line, j);
        if (!err.empty()) {
            out.jobs.pop_back();
            out.has_error = true;
            out.error = std::move(err);
            return out;
        }
        p = nl ? nl + 1 : end;
    }
    return out;
}

std::optional<std::string>
readFileToString(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        return std::nullopt;
    auto size = is.tellg();
    if (size < 0)
        return std::nullopt;
    std::string data;
    data.resize(static_cast<size_t>(size));
    is.seekg(0);
    if (size > 0 && !is.read(data.data(), size))
        return std::nullopt;
    return data;
}

} // namespace

std::string
toString(TraceFormat f)
{
    return f == TraceFormat::Binary ? "bin" : "csv";
}

std::optional<TraceFormat>
traceFormatFromString(std::string_view name)
{
    if (name == "csv")
        return TraceFormat::Csv;
    if (name == "bin")
        return TraceFormat::Binary;
    return std::nullopt;
}

std::string
toCsv(const std::vector<TrainingJob> &jobs)
{
    obs::Span span("trace.serialize_csv",
                   static_cast<int64_t>(jobs.size()));
    std::string out;
    // Typical rows are under 120 bytes; a slight over-reserve means
    // the writer appends into one allocation end to end.
    out.reserve(kHeader.size() + 1 + jobs.size() * 128);
    out += kHeader;
    out += '\n';
    for (const TrainingJob &j : jobs) {
        const auto &f = j.features;
        appendNumber(out, static_cast<int64_t>(j.id));
        out += ',';
        out += workload::toString(j.arch);
        out += ',';
        appendNumber(out, static_cast<int64_t>(j.num_cnodes));
        out += ',';
        appendNumber(out, static_cast<int64_t>(j.num_ps));
        for (double v : {f.batch_size, f.flop_count,
                         f.mem_access_bytes, f.input_bytes,
                         f.comm_bytes, f.embedding_comm_bytes,
                         f.dense_weight_bytes,
                         f.embedding_weight_bytes}) {
            out += ',';
            appendNumber(out, v);
        }
        out += '\n';
    }
    obs::counter("trace.rows_serialized").add(jobs.size());
    obs::counter("trace.bytes_serialized").add(out.size());
    return out;
}

ParseResult
fromCsv(std::string_view text, runtime::ThreadPool *pool)
{
    obs::Span span("trace.parse_csv",
                   static_cast<int64_t>(text.size()));
    static obs::Counter &parse_errors =
        obs::counter("trace.parse_errors");
    if (text.empty()) {
        parse_errors.add();
        return fail(1, "empty input");
    }

    size_t header_end = text.find('\n');
    std::string_view header = header_end == std::string_view::npos
                                  ? text
                                  : text.substr(0, header_end);
    if (!header.empty() && header.back() == '\r')
        header.remove_suffix(1);
    if (header != kHeader) {
        parse_errors.add();
        return fail(1, "unexpected header");
    }

    std::string_view body = header_end == std::string_view::npos
                                ? std::string_view{}
                                : text.substr(header_end + 1);

    // Line-aligned chunks; boundaries never depend on the thread
    // count, and splicing in chunk order makes the thread count
    // unobservable in the output either way.
    size_t max_chunks = 1;
    if (pool && pool->size() > 1) {
        max_chunks = std::min<size_t>(
            static_cast<size_t>(pool->size()) * 4,
            std::max<size_t>(1, body.size() / kMinChunkBytes));
    }
    auto chunks = runtime::alignedChunks(
        body.size(), max_chunks, [&](size_t pos) {
            size_t nl = body.find('\n', pos);
            return nl == std::string_view::npos ? body.size()
                                                : nl + 1;
        });

    std::vector<ChunkOutcome> outcomes(chunks.size());
    runtime::parallelFor(pool, chunks.size(), [&](size_t i) {
        obs::Span chunk_span(
            "trace.parse_chunk",
            static_cast<int64_t>(chunks[i].second -
                                 chunks[i].first));
        outcomes[i] =
            parseChunk(body, chunks[i].first, chunks[i].second);
    });

    // Stitch in chunk order: global line numbers are the header (line
    // 1) plus every line of the preceding chunks.
    size_t line_base = 1;
    size_t total = 0;
    for (const ChunkOutcome &o : outcomes) {
        if (o.has_error) {
            parse_errors.add();
            return fail(line_base + o.lines, o.error);
        }
        line_base += o.lines;
        total += o.jobs.size();
    }
    obs::counter("trace.rows_parsed").add(total);
    obs::counter("trace.bytes_parsed").add(text.size());

    ParseResult r;
    r.ok = true;
    if (outcomes.size() == 1) {
        // Serial path: adopt the chunk's vector instead of copying
        // ~100 MB of jobs through a second allocation.
        r.jobs = std::move(outcomes[0].jobs);
    } else {
        r.jobs.reserve(total);
        for (ChunkOutcome &o : outcomes) {
            r.jobs.insert(r.jobs.end(), o.jobs.begin(),
                          o.jobs.end());
        }
    }
    return r;
}

bool
writeTraceFile(const std::string &path,
               const std::vector<TrainingJob> &jobs,
               TraceFormat format)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    std::string data = format == TraceFormat::Binary ? toBinary(jobs)
                                                     : toCsv(jobs);
    os.write(data.data(),
             static_cast<std::streamsize>(data.size()));
    return static_cast<bool>(os);
}

ParseResult
readTraceFile(const std::string &path, runtime::ThreadPool *pool)
{
    auto data = readFileToString(path);
    if (!data) {
        ParseResult r;
        r.ok = false;
        r.error = "cannot open '" + path + "'";
        return r;
    }
    if (looksBinary(*data))
        return fromBinary(*data);
    return fromCsv(*data, pool);
}

StoreResult
readTraceStore(const std::string &path, runtime::ThreadPool *pool)
{
    auto storeFail = [](std::string what) {
        StoreResult r;
        r.error = std::move(what);
        return r;
    };
    auto fromParse = [&storeFail](ParseResult pr) {
        if (!pr.ok)
            return storeFail(std::move(pr.error));
        StoreResult r;
        r.ok = true;
        r.store = workload::JobStore(std::move(pr.jobs));
        return r;
    };

    auto mapped = MappedFile::map(path);
    if (!mapped) {
        // Unmappable (nonexistent, pipe, exotic fs): the buffered
        // reader supplies both the fallback and the error text
        // ("cannot open ..." for the nonexistent case).
        return fromParse(readTraceFile(path, pool));
    }
    std::string_view data = mapped->view();
    if (!looksBinary(data))
        return fromParse(fromCsv(data, pool));

    obs::Span span("trace.map_bin",
                   static_cast<int64_t>(data.size()));
    BinaryEnvelope env = validateBinaryEnvelope(data);
    if (!env.ok)
        return storeFail(std::move(env.error));

    // Validate rows in place, in parallel. Each range reports its
    // first bad row; the minimum across ranges is the global first
    // bad row, so acceptance AND the reported error are identical to
    // the serial fromBinary() pass for every pool size.
    size_t max_chunks = 1;
    if (pool && pool->size() > 1) {
        max_chunks = std::min<size_t>(
            static_cast<size_t>(pool->size()) * 4,
            std::max<size_t>(1, env.count / 4096));
    }
    auto chunks = runtime::alignedChunks(env.count, max_chunks,
                                         [](size_t pos) { return pos; });
    std::vector<size_t> first_bad(chunks.size(), env.count);
    runtime::parallelFor(pool, chunks.size(), [&](size_t c) {
        for (size_t i = chunks[c].first; i < chunks[c].second; ++i) {
            if (!validateBinaryRow(env.columns, i).empty()) {
                first_bad[c] = i;
                return;
            }
        }
    });
    size_t bad = env.count;
    for (size_t b : first_bad)
        bad = std::min(bad, b);
    if (bad < env.count)
        return storeFail(validateBinaryRow(env.columns, bad));

    obs::counter("trace.rows_mapped").add(env.count);
    obs::counter("trace.bytes_mapped").add(data.size());
    StoreResult r;
    r.ok = true;
    r.store = workload::JobStore::fromColumns(
        env.count, env.columns,
        std::make_shared<MappedFile>(std::move(*mapped)));
    return r;
}

bool
writeCsvFile(const std::string &path,
             const std::vector<TrainingJob> &jobs)
{
    return writeTraceFile(path, jobs, TraceFormat::Csv);
}

ParseResult
readCsvFile(const std::string &path)
{
    auto data = readFileToString(path);
    if (!data) {
        ParseResult r;
        r.ok = false;
        r.error = "cannot open '" + path + "'";
        return r;
    }
    return fromCsv(*data);
}

} // namespace paichar::trace
