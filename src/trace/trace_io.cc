#include "trace_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace paichar::trace {

using workload::TrainingJob;

namespace {

const char *kHeader =
    "id,arch,num_cnodes,num_ps,batch_size,flop_count,"
    "mem_access_bytes,input_bytes,comm_bytes,embedding_comm_bytes,"
    "dense_weight_bytes,embedding_weight_bytes";

constexpr size_t kFields = 12;

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end == s.c_str() + s.size() &&
           std::isfinite(out);
}

bool
parseInt(const std::string &s, int64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoll(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

ParseResult
fail(size_t line_no, const std::string &what)
{
    ParseResult r;
    r.ok = false;
    r.error = "line " + std::to_string(line_no) + ": " + what;
    return r;
}

} // namespace

std::string
toCsv(const std::vector<TrainingJob> &jobs)
{
    std::ostringstream os;
    os << kHeader << '\n';
    char buf[512];
    for (const TrainingJob &j : jobs) {
        const auto &f = j.features;
        std::snprintf(buf, sizeof(buf),
                      "%lld,%s,%d,%d,%.17g,%.17g,%.17g,%.17g,%.17g,"
                      "%.17g,%.17g,%.17g\n",
                      static_cast<long long>(j.id),
                      workload::toString(j.arch).c_str(), j.num_cnodes,
                      j.num_ps, f.batch_size, f.flop_count,
                      f.mem_access_bytes, f.input_bytes, f.comm_bytes,
                      f.embedding_comm_bytes, f.dense_weight_bytes,
                      f.embedding_weight_bytes);
        os << buf;
    }
    return os.str();
}

ParseResult
fromCsv(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    size_t line_no = 0;

    if (!std::getline(is, line))
        return fail(1, "empty input");
    ++line_no;
    // Normalize trailing CR for header comparison.
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    if (line != kHeader)
        return fail(1, "unexpected header");

    ParseResult r;
    r.ok = true;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line == "\r")
            continue;
        auto fields = splitCsvLine(line);
        if (fields.size() != kFields) {
            return fail(line_no, "expected " +
                                     std::to_string(kFields) +
                                     " fields, got " +
                                     std::to_string(fields.size()));
        }
        TrainingJob j;
        int64_t iv;
        if (!parseInt(fields[0], iv))
            return fail(line_no, "bad id '" + fields[0] + "'");
        j.id = iv;
        auto arch = workload::archFromString(fields[1]);
        if (!arch)
            return fail(line_no,
                        "unknown architecture '" + fields[1] + "'");
        j.arch = *arch;
        if (!parseInt(fields[2], iv) || iv < 1)
            return fail(line_no, "bad num_cnodes '" + fields[2] + "'");
        j.num_cnodes = static_cast<int>(iv);
        if (!parseInt(fields[3], iv) || iv < 0)
            return fail(line_no, "bad num_ps '" + fields[3] + "'");
        j.num_ps = static_cast<int>(iv);

        double *slots[] = {&j.features.batch_size,
                           &j.features.flop_count,
                           &j.features.mem_access_bytes,
                           &j.features.input_bytes,
                           &j.features.comm_bytes,
                           &j.features.embedding_comm_bytes,
                           &j.features.dense_weight_bytes,
                           &j.features.embedding_weight_bytes};
        for (size_t s = 0; s < 8; ++s) {
            if (!parseDouble(fields[4 + s], *slots[s])) {
                return fail(line_no, "bad numeric field '" +
                                         fields[4 + s] + "'");
            }
        }
        if (!j.features.valid())
            return fail(line_no, "features fail validation");
        r.jobs.push_back(j);
    }
    return r;
}

bool
writeCsvFile(const std::string &path,
             const std::vector<TrainingJob> &jobs)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << toCsv(jobs);
    return static_cast<bool>(os);
}

ParseResult
readCsvFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ParseResult r;
        r.ok = false;
        r.error = "cannot open '" + path + "'";
        return r;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return fromCsv(buf.str());
}

} // namespace paichar::trace
