#include "binary_trace.h"

#include <bit>
#include <cstring>
#include <iterator>

#include "obs/obs.h"

namespace paichar::trace {

using workload::ArchType;
using workload::TrainingJob;
using workload::WorkloadFeatures;

// The columns are written and read back with raw memcpy, which is
// only the on-disk little-endian layout on a little-endian host.
static_assert(std::endian::native == std::endian::little,
              "paib serialization assumes a little-endian host");

namespace {

/** Feature columns in schema order (shared with the JobStore view). */
constexpr auto &kFeatureColumns = workload::kFeatureColumnOrder;

constexpr size_t kNumFeatures = workload::kNumFeatureColumns;

/** Fixed-size header (magic + version + count) and footer. */
constexpr size_t kHeaderBytes = 4 + sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kFooterBytes = sizeof(uint64_t);

/** Serialized bytes per job across all columns. */
constexpr size_t kBytesPerJob = sizeof(int64_t) + sizeof(uint8_t) +
                                2 * sizeof(int32_t) +
                                kNumFeatures * sizeof(double);

/**
 * FNV-1a folded over 8-byte words (byte-at-a-time for the tail):
 * the classic constants, but ~8x the scan rate, which keeps the
 * checksum sweep off the critical path at million-job scale.
 */
uint64_t
checksum(const char *p, size_t n)
{
    constexpr uint64_t kPrime = 1099511628211ull;
    uint64_t h = 14695981039346656037ull;
    size_t words = n / 8;
    for (size_t i = 0; i < words; ++i) {
        uint64_t w;
        std::memcpy(&w, p + i * 8, 8);
        h = (h ^ w) * kPrime;
    }
    for (size_t i = words * 8; i < n; ++i) {
        h = (h ^ static_cast<unsigned char>(p[i])) * kPrime;
    }
    return h;
}

ParseResult
fail(const std::string &what)
{
    ParseResult r;
    r.ok = false;
    r.error = what;
    return r;
}

template <typename T>
void
appendRaw(std::string &out, T v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
T
readRaw(const char *p)
{
    T v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

} // namespace

bool
looksBinary(std::string_view data)
{
    return data.size() >= sizeof kBinaryMagic &&
           std::memcmp(data.data(), kBinaryMagic,
                       sizeof kBinaryMagic) == 0;
}

std::string
toBinary(const std::vector<TrainingJob> &jobs)
{
    obs::Span span("trace.serialize_bin",
                   static_cast<int64_t>(jobs.size()));
    const size_t n = jobs.size();
    std::string out;
    out.reserve(kHeaderBytes + n * kBytesPerJob + kFooterBytes);
    out.append(kBinaryMagic, sizeof kBinaryMagic);
    appendRaw(out, kBinaryVersion);
    appendRaw(out, static_cast<uint64_t>(n));

    // One gather pass per column keeps every array contiguous so the
    // loader can bulk-copy it back.
    for (const TrainingJob &j : jobs)
        appendRaw(out, static_cast<int64_t>(j.id));
    for (const TrainingJob &j : jobs)
        appendRaw(out, static_cast<uint8_t>(j.arch));
    for (const TrainingJob &j : jobs)
        appendRaw(out, static_cast<int32_t>(j.num_cnodes));
    for (const TrainingJob &j : jobs)
        appendRaw(out, static_cast<int32_t>(j.num_ps));
    for (double WorkloadFeatures::*col : kFeatureColumns) {
        for (const TrainingJob &j : jobs)
            appendRaw(out, j.features.*col);
    }

    appendRaw(out, checksum(out.data(), out.size()));
    obs::counter("trace.rows_serialized").add(jobs.size());
    obs::counter("trace.bytes_serialized").add(out.size());
    return out;
}

BinaryEnvelope
validateBinaryEnvelope(std::string_view data)
{
    BinaryEnvelope env;
    auto envFail = [&env](std::string what) {
        env.error = std::move(what);
        return env;
    };
    if (!looksBinary(data))
        return envFail("bad magic: not a paib trace");
    if (data.size() < kHeaderBytes + kFooterBytes)
        return envFail("truncated paib header");

    const char *base = data.data();
    uint32_t version = readRaw<uint32_t>(base + 4);
    if (version != kBinaryVersion) {
        return envFail("unsupported paib version " +
                       std::to_string(version) + " (expected " +
                       std::to_string(kBinaryVersion) + ")");
    }
    uint64_t count = readRaw<uint64_t>(base + 8);
    if (count > (data.size() - kHeaderBytes - kFooterBytes) /
                    kBytesPerJob) {
        return envFail("truncated paib trace: columns for " +
                       std::to_string(count) +
                       " jobs exceed the payload");
    }
    size_t expected = kHeaderBytes +
                      static_cast<size_t>(count) * kBytesPerJob +
                      kFooterBytes;
    if (data.size() != expected) {
        return envFail("paib size mismatch: expected " +
                       std::to_string(expected) + " bytes for " +
                       std::to_string(count) + " jobs, got " +
                       std::to_string(data.size()));
    }

    uint64_t stored = readRaw<uint64_t>(base + data.size() -
                                        kFooterBytes);
    if (stored != checksum(base, data.size() - kFooterBytes))
        return envFail("paib checksum mismatch");

    // Column base pointers in schema order. Columns are packed with
    // no padding, so everything after the uint8 arch array is
    // unaligned whenever n % 8 != 0 -- hence memcpy-only access.
    const size_t n = static_cast<size_t>(count);
    const char *p = base + kHeaderBytes;
    env.columns.ids = p;
    p += n * sizeof(int64_t);
    env.columns.archs = p;
    p += n * sizeof(uint8_t);
    env.columns.cnodes = p;
    p += n * sizeof(int32_t);
    env.columns.ps = p;
    p += n * sizeof(int32_t);
    for (size_t k = 0; k < kNumFeatures; ++k) {
        env.columns.features[k] = p;
        p += n * sizeof(double);
    }
    env.count = n;
    env.ok = true;
    return env;
}

std::string
validateBinaryRow(const workload::JobColumns &cols, size_t i)
{
    auto rowFail = [i](const std::string &what) {
        return "job " + std::to_string(i) + ": " + what;
    };
    constexpr size_t kNumArch = std::size(workload::kAllArchTypes);
    uint8_t a = readRaw<uint8_t>(cols.archs + i);
    if (a >= kNumArch)
        return rowFail("bad architecture code " + std::to_string(a));
    int32_t num_cnodes =
        readRaw<int32_t>(cols.cnodes + i * sizeof(int32_t));
    if (num_cnodes < 1)
        return rowFail("bad num_cnodes " +
                       std::to_string(num_cnodes));
    int32_t num_ps = readRaw<int32_t>(cols.ps + i * sizeof(int32_t));
    if (num_ps < 0)
        return rowFail("bad num_ps " + std::to_string(num_ps));
    WorkloadFeatures f;
    for (size_t k = 0; k < kNumFeatures; ++k) {
        f.*kFeatureColumns[k] = readRaw<double>(
            cols.features[k] + i * sizeof(double));
    }
    if (!f.valid())
        return rowFail("features fail validation");
    return {};
}

ParseResult
fromBinary(std::string_view data)
{
    obs::Span span("trace.parse_bin",
                   static_cast<int64_t>(data.size()));
    BinaryEnvelope env = validateBinaryEnvelope(data);
    if (!env.ok)
        return fail(env.error);

    ParseResult r;
    r.ok = true;
    r.jobs.reserve(env.count);

    // One row-major pass: the column reads stream sequentially and
    // every destination cache line is written exactly once, instead
    // of eight sparse passes over a jobs array far bigger than the
    // LLC. Rows are validated in index order, so the first bad job
    // is the one reported.
    workload::JobStore view = workload::JobStore::fromColumns(
        env.count, env.columns, nullptr);
    for (size_t i = 0; i < env.count; ++i) {
        std::string row_error = validateBinaryRow(env.columns, i);
        if (!row_error.empty())
            return fail(row_error);
        r.jobs.push_back(view.job(i));
    }
    obs::counter("trace.rows_parsed").add(r.jobs.size());
    obs::counter("trace.bytes_parsed").add(data.size());
    return r;
}

} // namespace paichar::trace
