/**
 * @file
 * Calibration knobs for the synthetic PAI cluster trace.
 *
 * The real trace (tens of thousands of jobs, Dec 1 2018 - Jan 20 2019)
 * is proprietary. The paper, however, publishes the aggregate behavior
 * of that population; this profile parameterizes per-job feature
 * distributions so that those aggregates emerge:
 *
 *  - job mix: 1w1g dominates jobs; PS/Worker is 29% of jobs but 81% of
 *    cNodes (Fig 5);
 *  - half of PS jobs use > 8 cNodes, ~0.7% of all jobs use > 128 and
 *    hold > 16% of resources (Fig 6a, Sec III-A);
 *  - 90% of models are < 10 GB, with a 100-300 GB embedding tail
 *    (Fig 6b);
 *  - weight/gradient traffic ~62% of cNode-level step time, ~22% of
 *    job-level; > 40% of PS jobs spend > 80% of time communicating;
 *    data I/O ~10% for 1w1g (5% of jobs > 50%) and ~3% for
 *    distributed jobs (Figs 7-8).
 */

#ifndef PAICHAR_TRACE_CALIBRATION_PROFILE_H
#define PAICHAR_TRACE_CALIBRATION_PROFILE_H

#include <vector>

namespace paichar::trace {

/** Parameters of a Beta(mean, concentration) fraction distribution. */
struct FractionDist
{
    double mean = 0.1;
    double concentration = 5.0;
};

/** Distribution knobs for the synthetic cluster population. */
struct CalibrationProfile
{
    // ----- architecture mix (job level, Fig 5a) -----
    double frac_1w1g = 0.62;
    double frac_1wng = 0.09;
    double frac_ps_worker = 0.29;

    // ----- scale: cNodes per job (Fig 6a) -----
    /** 1wng GPU counts and their weights. */
    std::vector<int> onewng_cnodes{2, 4, 8};
    std::vector<double> onewng_cnode_weights{0.45, 0.35, 0.20};
    /** PS/Worker body: lognormal(ln median, sigma). */
    double ps_cnodes_median = 7.0;
    double ps_cnodes_sigma = 1.1;
    /** PS/Worker tail: Pareto(x_m, alpha) mixed in with given prob. */
    double ps_cnodes_tail_prob = 0.03;
    double ps_cnodes_tail_xm = 96.0;
    double ps_cnodes_tail_alpha = 1.8;
    int ps_cnodes_max = 3000;

    // ----- per-step total time (inverted into demands) -----
    /** Lognormal step time, seconds. */
    double step_time_median = 0.3;
    double step_time_sigma = 0.8;

    // ----- component-share distributions -----
    /** 1w1g data-I/O share: body + heavy subpopulation. */
    FractionDist d1w1g_data{0.067, 27.0};
    double d1w1g_data_heavy_prob = 0.05;
    double d1w1g_data_heavy_lo = 0.5;
    double d1w1g_data_heavy_hi = 0.9;

    /**
     * 1wng data-I/O and weight-traffic shares. Both data and weights
     * cross PCIe for this type, and the combined share must exceed
     * the memory-bound share for Fig 11(b)'s "1wng is most sensitive
     * to PCIe bandwidth" to emerge.
     */
    FractionDist d1wng_data{0.05, 20.0};
    FractionDist d1wng_weight{0.40, 6.0};

    /**
     * PS/Worker data-I/O share: a tight body plus an I/O-heavy
     * subpopulation that only occurs among *small* jobs (<= the cNode
     * threshold). The heavy subpopulation supplies the ~22.6% of jobs
     * that lose from AllReduce-Local projection (Fig 9a) without
     * inflating the cNode-level data share above the paper's ~3%.
     */
    FractionDist dps_data{0.008, 150.0};
    double ps_data_heavy_prob = 0.42;
    int ps_data_heavy_max_cnodes = 16;
    double ps_data_heavy_lo = 0.03;
    double ps_data_heavy_hi = 0.30;

    /**
     * PS/Worker weight-traffic share mean grows with scale:
     *   mean(n) = clamp(base + slope * log2(n), lo, hi)
     * capturing that the big commodity-embedding / search /
     * recommendation jobs are the communication-heavy ones.
     */
    double ps_weight_mean_base = 0.43;
    double ps_weight_mean_slope = 0.06;
    double ps_weight_mean_lo = 0.10;
    double ps_weight_mean_hi = 0.90;
    /** Low concentration: jobs are either comm-bound or not. */
    double ps_weight_concentration = 0.9;

    /** Compute-bound share of the computation remainder (all types). */
    FractionDist compute_bound_ratio{0.42, 9.0};

    // ----- model scale (Fig 6b) -----
    /** Non-communicating (1w1g) weight size: lognormal GB. */
    double w1g_weight_median_gb = 0.03;
    double w1g_weight_sigma = 4.0;
    double weight_floor_bytes = 10.0;
    double w1g_weight_cap_gb = 5.0;

    /** Fraction of PS jobs that are embedding-heavy (sparse). */
    double ps_sparse_prob = 0.25;
    /** Accessed fraction of the embedding table per step: lognormal. */
    double ps_access_frac_median = 0.01;
    double ps_access_frac_sigma = 1.2;
    double ps_access_frac_min = 1e-4;
    double ps_access_frac_max = 0.5;
    /** Share of traffic that is embedding traffic in sparse jobs. */
    double ps_emb_traffic_lo = 0.5;
    double ps_emb_traffic_hi = 0.95;
    /** Hard cap on synthetic embedding tables (paper max ~300 GB). */
    double emb_weight_cap_gb = 400.0;

    // ----- misc -----
    /** Batch size: 2^U(lo, hi), rounded. */
    double batch_log2_lo = 5.0;
    double batch_log2_hi = 11.0;
    /** PS node count as a fraction of workers: U(lo, hi), >= 1. */
    double ps_nodes_frac_lo = 0.1;
    double ps_nodes_frac_hi = 0.5;
    /** Weights-to-traffic ratio for dense jobs: U(lo, hi). */
    double dense_weight_ratio_lo = 0.8;
    double dense_weight_ratio_hi = 1.5;

    /** The tuned profile reproducing the paper's aggregates. */
    static CalibrationProfile paiDec2018();
};

} // namespace paichar::trace

#endif // PAICHAR_TRACE_CALIBRATION_PROFILE_H
