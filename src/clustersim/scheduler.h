/**
 * @file
 * Cluster-level job scheduling simulation.
 *
 * The paper studies jobs one at a time; the platform runs thousands a
 * day on sub-clusters that are only partially NVLink-equipped ("due
 * to cost issue", Sec II-A1). This subsystem closes that loop: a
 * stream of job submissions is placed onto a finite cluster under a
 * queueing policy, each job's running time comes from the analytical
 * model under its actual placement, and the scheduler can optionally
 * *port* eligible PS/Worker jobs to AllReduce-Local when an NVLink
 * server is available — quantifying, at cluster scale, the paper's
 * observation that porting both speeds jobs up and frees resources.
 *
 * Placement rules follow Table II:
 *  - 1w1g: one GPU on any server;
 *  - 1wng: all GPUs on one server;
 *  - PS/Worker: one GPU on each of n distinct servers;
 *  - AllReduce-Local: n <= 8 GPUs on one NVLink server.
 */

#ifndef PAICHAR_CLUSTERSIM_SCHEDULER_H
#define PAICHAR_CLUSTERSIM_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "core/analytical_model.h"
#include "workload/training_job.h"

namespace paichar::clustersim {

/** Scheduling policy. */
enum class Policy
{
    /** Strict FCFS: the queue head blocks everything behind it. */
    Fcfs,
    /** FCFS with backfill: later jobs may start if the head cannot. */
    FcfsBackfill,
};

/** Cluster and policy configuration. */
struct SchedulerConfig
{
    int num_servers = 128;
    int gpus_per_server = 8;
    /** Fraction of servers equipped with NVLink (rounded down). */
    double nvlink_fraction = 0.5;
    Policy policy = Policy::FcfsBackfill;
    /**
     * Port eligible PS/Worker jobs (models fitting GPU memory, i.e.
     * dense-only in this trace schema) to AllReduce-Local when an
     * NVLink server has capacity (Sec III-C1's projection applied as
     * a live scheduling decision).
     */
    bool port_ps_to_allreduce = false;
    /** Parameter budget per GPU for the porting feasibility check. */
    double gpu_memory_bytes = 32e9;
};

/** One submitted job. */
struct JobRequest
{
    workload::TrainingJob job;
    double submit_time = 0.0;
    /** Training length in steps. */
    int64_t num_steps = 1000;
};

/** Outcome of one job. */
struct JobOutcome
{
    int64_t job_id = 0;
    double submit_time = 0.0;
    double start_time = 0.0;
    double finish_time = 0.0;
    /** GPUs occupied while running. */
    int gpus = 0;
    /** Architecture actually executed (after optional porting). */
    workload::ArchType executed_arch =
        workload::ArchType::OneWorkerOneGpu;
    bool ported = false;

    double wait() const { return start_time - submit_time; }
    double runtime() const { return finish_time - start_time; }
};

/** Aggregate outcome of a run. */
struct ClusterOutcome
{
    std::vector<JobOutcome> jobs;
    /** Completion time of the last job. */
    double makespan = 0.0;
    double mean_wait = 0.0;
    double p95_wait = 0.0;
    /** GPU-seconds used / (total GPUs x makespan). */
    double gpu_utilization = 0.0;
    /** Jobs ported to AllReduce-Local. */
    int64_t ported_jobs = 0;
    /**
     * Submitted jobs the cluster can never host (placeable() false),
     * dropped at admission instead of starving the queue. Also
     * counted in the `clustersim.unplaceable_jobs` obs counter.
     */
    int64_t unplaceable_jobs = 0;
};

/** Simulates job scheduling on a finite cluster. */
class ClusterScheduler
{
  public:
    /**
     * @param cfg   Cluster shape and policy.
     * @param model Analytical model supplying per-step times; its
     *              ClusterSpec must match the per-server hardware.
     */
    ClusterScheduler(const SchedulerConfig &cfg,
                     const core::AnalyticalModel &model);

    /**
     * Run the submission stream to completion.
     * @param requests Submissions; need not be sorted.
     */
    ClusterOutcome run(std::vector<JobRequest> requests) const;

    /** True if the cluster could ever place @p job. */
    bool placeable(const workload::TrainingJob &job) const;

  private:
    SchedulerConfig cfg_;
    const core::AnalyticalModel &model_;
};

/**
 * Turn a job population into a Poisson submission stream with
 * lognormal training lengths.
 *
 * @param jobs           The jobs to submit (in order).
 * @param jobs_per_hour  Mean submission rate.
 * @param steps_median   Median job length in steps.
 * @param steps_sigma    Lognormal sigma of the length.
 * @param seed           Arrival/length randomness seed.
 */
std::vector<JobRequest>
poissonRequests(const std::vector<workload::TrainingJob> &jobs,
                double jobs_per_hour, double steps_median,
                double steps_sigma, uint64_t seed);

} // namespace paichar::clustersim

#endif // PAICHAR_CLUSTERSIM_SCHEDULER_H
