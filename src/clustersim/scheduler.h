/**
 * @file
 * Cluster-level job scheduling simulation with a pluggable policy
 * layer.
 *
 * The paper studies jobs one at a time; the platform runs thousands a
 * day on sub-clusters that are only partially NVLink-equipped ("due
 * to cost issue", Sec II-A1). This subsystem closes that loop: a
 * stream of job submissions is placed onto a finite cluster under a
 * queueing policy, each job's running time comes from the analytical
 * model under its actual placement, and the scheduler can optionally
 * *port* eligible PS/Worker jobs to AllReduce-Local when an NVLink
 * server is available — quantifying, at cluster scale, the paper's
 * observation that porting both speeds jobs up and frees resources.
 *
 * The policy layer (DESIGN.md Sec 13) grows the original FIFO
 * scheduler into the prediction-driven family of Hu et al.
 * (arXiv:2109.01313): predicted job durations — from the analytical
 * model or a history-trained `src/predict` estimator — drive
 * shortest-predicted-first ordering, EASY-style reservation backfill,
 * preemption/restart with work conservation, and gang scheduling.
 * Placement can be fragmentation-aware (best-fit) and the fleet can
 * mix hw::GpuGeneration vintages with per-server speed factors.
 *
 * Placement rules follow Table II:
 *  - 1w1g: one GPU on any server;
 *  - 1wng: all GPUs on one server;
 *  - PS/Worker: one GPU on each of n distinct servers;
 *  - AllReduce-Local: n <= 8 GPUs on one NVLink server.
 */

#ifndef PAICHAR_CLUSTERSIM_SCHEDULER_H
#define PAICHAR_CLUSTERSIM_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/analytical_model.h"
#include "workload/training_job.h"

namespace paichar::clustersim {

/** Scheduling policy. */
enum class Policy
{
    /** Strict FCFS: the queue head blocks everything behind it. */
    Fifo,
    /**
     * FCFS with backfill: later jobs may start if the head cannot.
     * Without a predictor the backfill is greedy (any fitting job
     * starts); with one it is EASY-style — a later job may only jump
     * the head when its predicted completion does not delay the
     * head's earliest predicted start.
     */
    Backfill,
    /**
     * Shortest-predicted-first: the queue drains in order of
     * predicted run time (ties by arrival), shorter jobs skipping
     * blocked longer ones. The policy Hu et al. find recovers most
     * FIFO queueing time on heavy-tailed traces.
     */
    Spf,
    /**
     * Spf plus preemption/restart: a much-shorter queued job may
     * preempt the running job with the longest predicted remaining
     * time. Victims are restarted from their last completed step
     * (work conservation — at most one step of work is lost per
     * preemption) and re-queued with their remaining length.
     */
    SpfPreempt,
    /**
     * Gang scheduling: distributed jobs (more than one GPU) start
     * strictly in arrival order with an EASY reservation for the
     * queue head; only single-GPU jobs may backfill, and only when
     * their predicted completion respects the reservation.
     */
    Gang,
};

/** CLI spelling ("fifo", "backfill", "spf", "spf-preempt", "gang"). */
std::string toString(Policy p);

/** Parse a CLI policy name; nullopt for unknown spellings. */
std::optional<Policy> policyFromString(const std::string &name);

/** Every valid CLI policy spelling, for error messages. */
const std::vector<std::string> &policyNames();

/** Placement strategy across servers. */
enum class PlacementStrategy
{
    /** First server that fits (scan order), the original behavior. */
    FirstFit,
    /**
     * Fragmentation-aware best-fit: among fitting servers prefer the
     * one leaving the fewest free GPUs behind (then the fastest
     * generation, then scan order), so large contiguous blocks stay
     * available for the 8-GPU gang jobs the paper's skew is made of.
     */
    BestFit,
};

/**
 * Predicted run seconds for a job: (job, training steps, the
 * analytical model's predicted run seconds) -> seconds. A null
 * function means "use the analytical prediction directly".
 * Implementations are typically predict::DurationModel instances
 * bound by the CLI.
 */
using DurationPredictorFn = std::function<double(
    const workload::TrainingJob &, int64_t, double)>;

/** Cluster and policy configuration. */
struct SchedulerConfig
{
    int num_servers = 128;
    int gpus_per_server = 8;
    /** Fraction of servers equipped with NVLink (rounded down). */
    double nvlink_fraction = 0.5;
    Policy policy = Policy::Backfill;
    /** Server-selection strategy for placements. */
    PlacementStrategy placement = PlacementStrategy::FirstFit;
    /**
     * Duration predictor feeding Spf/SpfPreempt ordering, EASY
     * reservations and Gang backfill windows. Null = the analytical
     * model's own prediction for those policies, and plain greedy
     * backfill for Policy::Backfill.
     */
    DurationPredictorFn predictor;
    /**
     * A queued job may preempt only when the victim's predicted
     * remaining time exceeds preempt_ratio x the queued job's
     * predicted run time (> 1 or preemption never terminates).
     */
    double preempt_ratio = 2.0;
    /** Preemptions allowed per job before it becomes unpreemptable. */
    int max_preemptions = 4;
    /**
     * Fraction of servers populated with older hw::paiGenerations()
     * vintages (rounded down, taken from the tail of the server
     * range, never from the NVLink servers' generation flags --
     * older generations are NVLink-less and slower, so jobs placed
     * there run 1/speed longer).
     */
    double old_gen_fraction = 0.0;
    /**
     * Port eligible PS/Worker jobs (models fitting GPU memory, i.e.
     * dense-only in this trace schema) to AllReduce-Local when an
     * NVLink server has capacity (Sec III-C1's projection applied as
     * a live scheduling decision).
     */
    bool port_ps_to_allreduce = false;
    /** Parameter budget per GPU for the porting feasibility check. */
    double gpu_memory_bytes = 32e9;
    /**
     * Emit obs::JobRecord telemetry when a job log is active. The
     * CLI's FIFO comparison run turns this off so the exported log
     * holds exactly one record per job.
     */
    bool record_job_log = true;
    /**
     * Record timeline probes (queue depth, running jobs, free GPUs,
     * arrival/preemption/unplaceable rates) when a timeline is
     * active. Off for the CLI's FIFO comparison run so the exported
     * timeline describes exactly one schedule.
     */
    bool record_timeline = true;
};

/** One submitted job. */
struct JobRequest
{
    workload::TrainingJob job;
    double submit_time = 0.0;
    /** Training length in steps. */
    int64_t num_steps = 1000;
};

/** Outcome of one job. */
struct JobOutcome
{
    int64_t job_id = 0;
    double submit_time = 0.0;
    /** First time the job started running. */
    double start_time = 0.0;
    double finish_time = 0.0;
    /** GPUs occupied while running. */
    int gpus = 0;
    /** Architecture actually executed (after optional porting). */
    workload::ArchType executed_arch =
        workload::ArchType::OneWorkerOneGpu;
    bool ported = false;
    /** Executed per-step seconds (placement- and generation-aware). */
    double step_s = 0.0;
    /** Training length in steps (echo of the request). */
    int64_t num_steps = 0;
    /** Predicted run seconds the policy ordered this job by. */
    double predicted_run_s = 0.0;
    /** Times this job was preempted and restarted. */
    int preemptions = 0;
    /**
     * Running segments [start, end) when the job was preempted at
     * least once (the final segment included); empty for jobs that
     * ran uninterrupted — their only segment is
     * [start_time, finish_time).
     */
    std::vector<std::pair<double, double>> segments;

    double wait() const { return start_time - submit_time; }
    double runtime() const { return finish_time - start_time; }

    /** Seconds actually spent running (sum of segments). */
    double
    runSeconds() const
    {
        if (segments.empty())
            return runtime();
        double total = 0.0;
        for (auto [s, e] : segments)
            total += e - s;
        return total;
    }
};

/** Aggregate outcome of a run. */
struct ClusterOutcome
{
    std::vector<JobOutcome> jobs;
    /** Completion time of the last job. */
    double makespan = 0.0;
    double mean_wait = 0.0;
    double p95_wait = 0.0;
    /** GPU-seconds used / (total GPUs x makespan). */
    double gpu_utilization = 0.0;
    /** Jobs ported to AllReduce-Local. */
    int64_t ported_jobs = 0;
    /** Total preemption events across all jobs. */
    int64_t preemptions = 0;
    /**
     * Submitted jobs the cluster can never host (placeable() false),
     * dropped at admission instead of starving the queue. Also
     * counted in the `clustersim.unplaceable_jobs` obs counter.
     */
    int64_t unplaceable_jobs = 0;
};

/** Simulates job scheduling on a finite cluster. */
class ClusterScheduler
{
  public:
    /**
     * @param cfg   Cluster shape and policy.
     * @param model Analytical model supplying per-step times; its
     *              ClusterSpec must match the per-server hardware.
     */
    ClusterScheduler(const SchedulerConfig &cfg,
                     const core::AnalyticalModel &model);

    /**
     * Run the submission stream to completion.
     * @param requests Submissions; need not be sorted.
     */
    ClusterOutcome run(std::vector<JobRequest> requests) const;

    /** True if the cluster could ever place @p job. */
    bool placeable(const workload::TrainingJob &job) const;

  private:
    SchedulerConfig cfg_;
    const core::AnalyticalModel &model_;
};

/**
 * Turn a job population into a Poisson submission stream with
 * lognormal training lengths.
 *
 * @param jobs           The jobs to submit (in order).
 * @param jobs_per_hour  Mean submission rate.
 * @param steps_median   Median job length in steps.
 * @param steps_sigma    Lognormal sigma of the length.
 * @param seed           Arrival/length randomness seed.
 */
std::vector<JobRequest>
poissonRequests(const std::vector<workload::TrainingJob> &jobs,
                double jobs_per_hour, double steps_median,
                double steps_sigma, uint64_t seed);

} // namespace paichar::clustersim

#endif // PAICHAR_CLUSTERSIM_SCHEDULER_H
