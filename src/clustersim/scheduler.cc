#include "scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "hw/hardware_config.h"
#include "obs/job_log.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "sim/sharded_engine.h"
#include "stats/cdf.h"
#include "stats/rng.h"

namespace paichar::clustersim {

using workload::ArchType;
using workload::TrainingJob;

std::string
toString(Policy p)
{
    switch (p) {
      case Policy::Fifo:
        return "fifo";
      case Policy::Backfill:
        return "backfill";
      case Policy::Spf:
        return "spf";
      case Policy::SpfPreempt:
        return "spf-preempt";
      case Policy::Gang:
        return "gang";
    }
    return "?";
}

std::optional<Policy>
policyFromString(const std::string &name)
{
    if (name == "fifo")
        return Policy::Fifo;
    if (name == "backfill")
        return Policy::Backfill;
    if (name == "spf")
        return Policy::Spf;
    if (name == "spf-preempt")
        return Policy::SpfPreempt;
    if (name == "gang")
        return Policy::Gang;
    return std::nullopt;
}

const std::vector<std::string> &
policyNames()
{
    static const std::vector<std::string> names{
        "fifo", "backfill", "spf", "spf-preempt", "gang"};
    return names;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** (server index, gpus taken) pairs of one job's allocation. */
using Allocation = std::vector<std::pair<int, int>>;

/** Mutable cluster capacity. */
struct Capacity
{
    std::vector<int> free_gpus;
    std::vector<bool> nvlink;
    /** Per-server generation speed factor (1.0 = Table I). */
    std::vector<double> speed;

    void
    take(const Allocation &alloc)
    {
        for (auto [s, g] : alloc) {
            free_gpus[static_cast<size_t>(s)] -= g;
            assert(free_gpus[static_cast<size_t>(s)] >= 0);
        }
    }

    void
    release(const Allocation &alloc)
    {
        for (auto [s, g] : alloc)
            free_gpus[static_cast<size_t>(s)] += g;
    }

    /** Slowest generation among @p alloc's servers. */
    double
    slowestSpeed(const Allocation &alloc) const
    {
        double v = 1.0;
        for (auto [s, g] : alloc) {
            (void)g;
            v = std::min(v, speed[static_cast<size_t>(s)]);
        }
        return v;
    }
};

/**
 * Find a single server with @p gpus free. Non-NVLink servers are
 * preferred unless NVLink is required, preserving scarce NVLink
 * capacity for the jobs that need it. Best-fit additionally prefers
 * the fitting server leaving the fewest GPUs free (then the fastest
 * generation, then scan order) instead of the first hit.
 */
bool
findOneServer(const Capacity &cap, int gpus, bool need_nvlink,
              PlacementStrategy strategy, Allocation *alloc)
{
    if (strategy == PlacementStrategy::BestFit) {
        // (prefer non-NVLink when allowed, leftover, -speed, index)
        int best = -1;
        auto better = [&](size_t s, int against) {
            if (against < 0)
                return true;
            auto a = static_cast<size_t>(against);
            bool s_nvl = cap.nvlink[s], a_nvl = cap.nvlink[a];
            if (!need_nvlink && s_nvl != a_nvl)
                return a_nvl; // the non-NVLink server wins
            int s_left = cap.free_gpus[s] - gpus;
            int a_left = cap.free_gpus[a] - gpus;
            if (s_left != a_left)
                return s_left < a_left;
            if (cap.speed[s] != cap.speed[a])
                return cap.speed[s] > cap.speed[a];
            return false; // scan order: earlier index already held
        };
        for (size_t s = 0; s < cap.free_gpus.size(); ++s) {
            if (cap.free_gpus[s] < gpus)
                continue;
            if (need_nvlink && !cap.nvlink[s])
                continue;
            if (better(s, best))
                best = static_cast<int>(s);
        }
        if (best < 0)
            return false;
        alloc->assign(1, {best, gpus});
        return true;
    }

    int fallback = -1;
    for (size_t s = 0; s < cap.free_gpus.size(); ++s) {
        if (cap.free_gpus[s] < gpus)
            continue;
        if (need_nvlink && !cap.nvlink[s])
            continue;
        if (!need_nvlink && cap.nvlink[s]) {
            if (fallback < 0)
                fallback = static_cast<int>(s);
            continue;
        }
        alloc->assign(1, {static_cast<int>(s), gpus});
        return true;
    }
    if (!need_nvlink && fallback >= 0) {
        alloc->assign(1, {fallback, gpus});
        return true;
    }
    return false;
}

/**
 * Find @p count distinct servers with one free GPU each. Best-fit
 * fills the most-fragmented (fewest free GPUs) servers first so the
 * large contiguous blocks stay whole.
 */
bool
findSpreadServers(const Capacity &cap, int count,
                  PlacementStrategy strategy, Allocation *alloc)
{
    alloc->clear();
    if (strategy == PlacementStrategy::BestFit) {
        std::vector<int> candidates;
        for (size_t s = 0; s < cap.free_gpus.size(); ++s) {
            if (cap.free_gpus[s] >= 1)
                candidates.push_back(static_cast<int>(s));
        }
        std::stable_sort(
            candidates.begin(), candidates.end(), [&](int a, int b) {
                auto sa = static_cast<size_t>(a);
                auto sb = static_cast<size_t>(b);
                if (cap.nvlink[sa] != cap.nvlink[sb])
                    return !cap.nvlink[sa]; // non-NVLink first
                if (cap.free_gpus[sa] != cap.free_gpus[sb])
                    return cap.free_gpus[sa] < cap.free_gpus[sb];
                return a < b;
            });
        for (int s : candidates) {
            if (static_cast<int>(alloc->size()) == count)
                break;
            alloc->push_back({s, 1});
        }
        return static_cast<int>(alloc->size()) == count;
    }
    // Non-NVLink servers first, then NVLink as overflow.
    for (int pass = 0; pass < 2; ++pass) {
        for (size_t s = 0; s < cap.free_gpus.size(); ++s) {
            if (static_cast<int>(alloc->size()) == count)
                return true;
            bool is_nvl = cap.nvlink[s];
            if ((pass == 0 && is_nvl) || (pass == 1 && !is_nvl))
                continue;
            if (cap.free_gpus[s] >= 1)
                alloc->push_back({static_cast<int>(s), 1});
        }
    }
    return static_cast<int>(alloc->size()) == count;
}

/** Placement for @p job as-is (no porting decision). */
bool
findFor(const Capacity &cap, const TrainingJob &job,
        const SchedulerConfig &cfg, Allocation *alloc)
{
    switch (job.arch) {
      case ArchType::OneWorkerOneGpu:
        return findOneServer(cap, 1, false, cfg.placement, alloc);
      case ArchType::OneWorkerMultiGpu:
        return findOneServer(cap, job.num_cnodes, false,
                             cfg.placement, alloc);
      case ArchType::PsWorker:
        return findSpreadServers(cap, job.num_cnodes, cfg.placement,
                                 alloc);
      case ArchType::AllReduceLocal:
      case ArchType::Pearl:
        return findOneServer(cap, job.num_cnodes, true,
                             cfg.placement, alloc);
      case ArchType::AllReduceCluster: {
        // Whole NVLink servers, packed.
        int need = job.num_cnodes;
        alloc->clear();
        for (size_t s = 0; s < cap.free_gpus.size() && need > 0;
             ++s) {
            if (!cap.nvlink[s] ||
                cap.free_gpus[s] < cfg.gpus_per_server) {
                continue;
            }
            int take = std::min(need, cfg.gpus_per_server);
            alloc->push_back({static_cast<int>(s), take});
            need -= take;
        }
        return need == 0;
      }
    }
    return false;
}

/** True when the policy orders or gates the queue by predictions. */
bool
predictionDriven(Policy p)
{
    return p == Policy::Spf || p == Policy::SpfPreempt ||
           p == Policy::Gang;
}

} // namespace

ClusterScheduler::ClusterScheduler(const SchedulerConfig &cfg,
                                   const core::AnalyticalModel &model)
    : cfg_(cfg), model_(model)
{
    assert(cfg_.num_servers >= 1);
    assert(cfg_.gpus_per_server >= 1);
    assert(cfg_.nvlink_fraction >= 0.0 && cfg_.nvlink_fraction <= 1.0);
    assert(cfg_.old_gen_fraction >= 0.0 &&
           cfg_.old_gen_fraction <= 1.0);
    assert(cfg_.preempt_ratio > 1.0 &&
           "preempt_ratio <= 1 does not terminate");
}

bool
ClusterScheduler::placeable(const TrainingJob &job) const
{
    int nvl_servers = static_cast<int>(cfg_.num_servers *
                                       cfg_.nvlink_fraction);
    switch (job.arch) {
      case ArchType::OneWorkerOneGpu:
        return true;
      case ArchType::OneWorkerMultiGpu:
      case ArchType::Pearl:
        return job.num_cnodes <= cfg_.gpus_per_server &&
               (job.arch != ArchType::Pearl || nvl_servers >= 1);
      case ArchType::PsWorker:
        return job.num_cnodes <= cfg_.num_servers;
      case ArchType::AllReduceLocal:
        return job.num_cnodes <= cfg_.gpus_per_server &&
               nvl_servers >= 1;
      case ArchType::AllReduceCluster:
        return nvl_servers * cfg_.gpus_per_server >= job.num_cnodes;
    }
    return false;
}

ClusterOutcome
ClusterScheduler::run(std::vector<JobRequest> requests) const
{
    obs::Span run_span("clustersim.run",
                       static_cast<int64_t>(requests.size()));
    static obs::Counter &placement_attempts =
        obs::counter("clustersim.placement_attempts");
    static obs::Counter &placement_failures =
        obs::counter("clustersim.placement_failures");

    std::stable_sort(requests.begin(), requests.end(),
                     [](const JobRequest &a, const JobRequest &b) {
                         return a.submit_time < b.submit_time;
                     });

    Capacity cap;
    cap.free_gpus.assign(static_cast<size_t>(cfg_.num_servers),
                         cfg_.gpus_per_server);
    cap.nvlink.assign(static_cast<size_t>(cfg_.num_servers), false);
    cap.speed.assign(static_cast<size_t>(cfg_.num_servers), 1.0);
    int nvl_servers = static_cast<int>(cfg_.num_servers *
                                       cfg_.nvlink_fraction);
    for (int s = 0; s < nvl_servers; ++s)
        cap.nvlink[static_cast<size_t>(s)] = true;
    // Heterogeneous generations occupy the tail of the server range,
    // clamped so they never eat into the NVLink head: placeable()
    // promises nvl_servers NVLink servers and admission relies on it.
    int old_servers =
        std::min(static_cast<int>(cfg_.num_servers *
                                  cfg_.old_gen_fraction),
                 cfg_.num_servers - nvl_servers);
    const auto generations = hw::paiGenerations();
    int old_gens = static_cast<int>(generations.size()) - 1;
    for (int k = 0; k < old_servers && old_gens > 0; ++k) {
        const hw::GpuGeneration &g =
            generations[static_cast<size_t>(1 + k % old_gens)];
        auto s = static_cast<size_t>(cfg_.num_servers - 1 - k);
        cap.speed[s] = g.speed;
        cap.nvlink[s] = cap.nvlink[s] && g.has_nvlink;
    }

    // Completion events run on a sharded discrete-event engine: a
    // job's finish event lives on the shard of its first allocated
    // server, so completions at the same timestamp on different
    // domains drain in parallel. Releases commute (they only add
    // capacity back), which keeps the outcome byte-identical for any
    // shard count, including the serial shards=1 fast path.
    int num_shards = sim::shardCount();
    sim::ShardedEngine engine(num_shards, /*lookahead=*/0.0,
                              runtime::globalPool());

    // Timeline probes: scheduler-loop observations sampled at the
    // simulated-time cadence (levels are "as seen by the control
    // loop" at each pass; rates count admissions/preemptions/drops).
    // A record_timeline=false run (the FIFO comparison) suspends the
    // process-wide timeline so the engine's probes stay quiet too.
    std::optional<obs::TimelineSuspend> tl_suspend;
    if (!cfg_.record_timeline)
        tl_suspend.emplace();
    obs::Timeline *tl =
        obs::timelineActive() ? obs::timeline() : nullptr;
    obs::Timeline::Level *tl_pending =
        tl ? &tl->level("clustersim.pending_jobs") : nullptr;
    obs::Timeline::Level *tl_running =
        tl ? &tl->level("clustersim.running_jobs") : nullptr;
    obs::Timeline::Level *tl_free_gpus =
        tl ? &tl->level("clustersim.free_gpus") : nullptr;
    obs::Timeline::Rate *tl_arrivals =
        tl ? &tl->rate("clustersim.arrivals") : nullptr;
    obs::Timeline::Rate *tl_preemptions =
        tl ? &tl->rate("clustersim.preemptions") : nullptr;
    obs::Timeline::Rate *tl_unplaceable =
        tl ? &tl->rate("clustersim.unplaceable") : nullptr;

    // In-flight jobs, indexed by slot; finished slots are recycled
    // through a free list so long traces do not grow the table past
    // the peak concurrency. The generation counter invalidates the
    // completion event of a preempted job: the stale event still
    // fires but its (slot, gen) pair no longer matches.
    struct Slot
    {
        Allocation alloc;
        TrainingJob executed;
        size_t req = 0;
        size_t out = 0;
        double seg_start = 0.0;
        double step_s = 0.0;
        double pred_finish = kInf;
        int64_t steps_left = 0;
        uint64_t gen = 0;
        int gpus = 0;
        bool active = false;
    };
    std::vector<Slot> slots;
    std::vector<size_t> free_slots;
    // Per-shard buffers of (slot, gen) whose completion fired in the
    // last drain; a shard's completion callbacks are the only
    // writers of its buffer, so no locks are needed.
    std::vector<std::vector<std::pair<size_t, uint64_t>>> finished(
        static_cast<size_t>(engine.numShards()));

    ClusterOutcome out;
    out.jobs.reserve(requests.size());
    std::deque<size_t> pending; // indices into requests
    size_t arrival = 0;
    double now = 0.0;
    double gpu_seconds = 0.0;

    // Refresh the timeline level probes with the control loop's view
    // of the cluster at `now`. Last-set-wins within a window, so the
    // value sampled at each window close is the state just before
    // time crossed the boundary.
    auto sampleLevels = [&] {
        if (!tl)
            return;
        tl_pending->set(static_cast<double>(pending.size()));
        int running = 0;
        for (const Slot &sl : slots)
            running += sl.active ? 1 : 0;
        tl_running->set(static_cast<double>(running));
        int64_t free_g = 0;
        for (int g : cap.free_gpus)
            free_g += g;
        tl_free_gpus->set(static_cast<double>(free_g));
    };

    // As-submitted step times are pure per-job model evaluations:
    // price them up front in parallel. Ported placements execute a
    // different architecture and are priced on demand.
    std::vector<double> submitted_step = runtime::parallelMap<double>(
        runtime::globalPool(), requests.size(), [&](size_t i) {
            return model_.stepTime(requests[i].job);
        });

    // Predicted run seconds per request (policy ordering input): the
    // configured predictor, else the analytical prediction itself.
    const bool wants_predictions =
        predictionDriven(cfg_.policy) ||
        (cfg_.policy == Policy::Backfill && cfg_.predictor);
    std::vector<double> pred_run;
    std::vector<double> pred_per_step;
    if (wants_predictions) {
        pred_run = runtime::parallelMap<double>(
            runtime::globalPool(), requests.size(), [&](size_t i) {
                double model_run =
                    submitted_step[i] *
                    static_cast<double>(requests[i].num_steps);
                if (!cfg_.predictor)
                    return model_run;
                double p = cfg_.predictor(requests[i].job,
                                          requests[i].num_steps,
                                          model_run);
                return std::isfinite(p) && p >= 0.0 ? p : model_run;
            });
        pred_per_step.resize(requests.size());
        for (size_t i = 0; i < requests.size(); ++i) {
            pred_per_step[i] =
                pred_run[i] /
                static_cast<double>(requests[i].num_steps);
        }
    }
    // Predicted *remaining* run seconds; shrinks when a preempted
    // job is re-queued with only its unfinished steps.
    std::vector<double> pred_remaining = pred_run;

    // Per-request mutable state across preemption/restart cycles.
    std::vector<int64_t> steps_remaining(requests.size());
    for (size_t i = 0; i < requests.size(); ++i)
        steps_remaining[i] = requests[i].num_steps;
    std::vector<int64_t> attempts(requests.size(), 0);
    constexpr size_t kNoOutcome = static_cast<size_t>(-1);
    std::vector<size_t> out_index(requests.size(), kNoOutcome);
    // A restarted job resumes its pinned execution plan (same
    // architecture/porting decision), as a checkpoint restore would.
    std::vector<std::optional<TrainingJob>> pinned_exec(
        requests.size());

    auto emitJobRecord = [&](size_t req_index, const JobOutcome &jo,
                             const TrainingJob &executed,
                             int server) {
        if (!cfg_.record_job_log || !obs::jobLogActive())
            return;
        const JobRequest &req = requests[req_index];
        obs::JobRecord rec;
        rec.job_id = jo.job_id;
        rec.source = "clustersim";
        rec.arch = workload::toString(req.job.arch);
        rec.executed_arch = workload::toString(executed.arch);
        rec.ported = jo.ported;
        rec.num_cnodes = executed.num_cnodes;
        rec.gpus = jo.gpus;
        rec.server = server;
        rec.num_steps = req.num_steps;
        rec.placement_attempts = attempts[req_index];
        rec.submit_s = jo.submit_time;
        rec.start_s = jo.start_time;
        rec.finish_s = jo.finish_time;
        // Predicted = the job as submitted; simulated = the job as
        // executed under its actual placement, so porting, generation
        // slowdown and preemption effects become the recorded skew.
        core::TimeBreakdown pred = model_.breakdown(req.job);
        rec.pred_td_s = pred.t_data;
        rec.pred_tc_flops_s = pred.t_comp_flops;
        rec.pred_tc_mem_s = pred.t_comp_mem;
        rec.pred_tw_s = pred.t_weight;
        rec.pred_step_s = pred.total();
        core::TimeBreakdown sim = model_.breakdown(executed);
        rec.sim_td_s = sim.t_data;
        rec.sim_tc_s = sim.compute();
        rec.sim_tw_s = sim.t_weight;
        rec.sim_step_s = jo.step_s;
        obs::recordJob(std::move(rec));
    };

    // Attempt to place one request; on success records/updates the
    // outcome and consumes capacity.
    auto tryPlace = [&](size_t req_index) -> bool {
        const JobRequest &req = requests[req_index];
        placement_attempts.add();
        ++attempts[req_index];
        const TrainingJob &job = req.job;
        Allocation alloc;
        TrainingJob executed = job;
        bool ported = false;

        if (pinned_exec[req_index]) {
            // Restart after preemption: resume the recorded plan.
            executed = *pinned_exec[req_index];
            ported = executed.arch != job.arch;
            if (!findFor(cap, executed, cfg_, &alloc)) {
                placement_failures.add();
                return false;
            }
        } else {
            if (cfg_.port_ps_to_allreduce &&
                job.arch == ArchType::PsWorker &&
                job.features.weightBytes() <= cfg_.gpu_memory_bytes) {
                int n = std::min(job.num_cnodes, cfg_.gpus_per_server);
                if (findOneServer(cap, n, /*need_nvlink=*/true,
                                  cfg_.placement, &alloc)) {
                    executed.arch = ArchType::AllReduceLocal;
                    executed.num_cnodes = n;
                    executed.num_ps = 0;
                    ported = true;
                }
            }
            if (!ported && !findFor(cap, job, cfg_, &alloc)) {
                placement_failures.add();
                return false;
            }
        }

        cap.take(alloc);
        double base_step = ported ? model_.stepTime(executed)
                                  : submitted_step[req_index];
        // Older generations stretch every step by 1/speed.
        double step = base_step / cap.slowestSpeed(alloc);
        int64_t steps_left = steps_remaining[req_index];
        double runtime = step * static_cast<double>(steps_left);
        int gpus = 0;
        for (auto [s, g] : alloc) {
            (void)s;
            gpus += g;
        }

        size_t oi = out_index[req_index];
        if (oi == kNoOutcome) {
            JobOutcome jo;
            jo.job_id = job.id;
            jo.submit_time = req.submit_time;
            jo.start_time = now;
            jo.finish_time = now + runtime;
            jo.executed_arch = executed.arch;
            jo.ported = ported;
            jo.gpus = gpus;
            jo.step_s = step;
            jo.num_steps = req.num_steps;
            jo.predicted_run_s = wants_predictions
                                     ? pred_run[req_index]
                                     : submitted_step[req_index] *
                                           static_cast<double>(
                                               req.num_steps);
            oi = out.jobs.size();
            out_index[req_index] = oi;
            out.jobs.push_back(std::move(jo));
            out.ported_jobs += ported;
        } else {
            // Restart: keep first-start fields, refresh execution.
            JobOutcome &jo = out.jobs[oi];
            jo.finish_time = now + runtime;
            jo.step_s = step;
            jo.gpus = gpus;
        }
        gpu_seconds += gpus * runtime;

        if (std::isfinite(runtime)) {
            size_t slot;
            if (!free_slots.empty()) {
                slot = free_slots.back();
                free_slots.pop_back();
            } else {
                slot = slots.size();
                slots.push_back(Slot{});
            }
            Slot &sl = slots[slot];
            sl.alloc = std::move(alloc);
            sl.executed = executed;
            sl.req = req_index;
            sl.out = oi;
            sl.seg_start = now;
            sl.step_s = step;
            sl.steps_left = steps_left;
            sl.pred_finish =
                wants_predictions
                    ? now + pred_per_step[req_index] *
                                static_cast<double>(steps_left)
                    : now + runtime;
            sl.gpus = gpus;
            sl.active = true;
            uint64_t gen = ++sl.gen;
            int shard = sl.alloc.front().first % engine.numShards();
            engine.schedule(shard, now + runtime,
                            [&finished, shard, slot, gen] {
                                finished[static_cast<size_t>(shard)]
                                    .push_back({slot, gen});
                            });
        } else {
            // A non-finite finish never fires: the job holds its
            // GPUs forever, exactly as the old priority-queue loop
            // (which broke out before ever popping it) behaved. The
            // outcome is final, so the record is emitted here.
            emitJobRecord(req_index, out.jobs[oi], executed,
                          alloc.empty() ? -1 : alloc.front().first);
        }
        return true;
    };

    // Earliest predicted time the queue head could start, assuming
    // running jobs release at their *predicted* finishes (EASY
    // backfill's reservation). +inf when some blocking job never
    // finishes.
    auto reservationTime = [&](size_t head_req) -> double {
        Capacity sim_cap = cap;
        Allocation scratch;
        std::vector<std::pair<double, size_t>> releases;
        for (size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].active)
                releases.push_back({slots[s].pred_finish, s});
        }
        std::sort(releases.begin(), releases.end(),
                  [&](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return slots[a.second].out < slots[b.second].out;
                  });
        const TrainingJob &job = requests[head_req].job;
        for (auto [t, s] : releases) {
            if (!std::isfinite(t))
                break;
            sim_cap.release(slots[s].alloc);
            if (findFor(sim_cap, job, cfg_, &scratch))
                return std::max(now, t);
        }
        return kInf;
    };

    // Preempt the running job in @p slot at `now`, re-queueing its
    // remaining steps. Work conservation: completed steps stay
    // completed; only the partial step in flight is redone.
    auto preempt = [&](size_t slot) {
        Slot &sl = slots[slot];
        assert(sl.active);
        auto done = static_cast<int64_t>(
            std::floor((now - sl.seg_start) / sl.step_s + 1e-9));
        done = std::clamp<int64_t>(done, 0, sl.steps_left - 1);
        int64_t left = sl.steps_left - done;

        // Return the unexecuted share of the GPU-seconds charged at
        // placement.
        gpu_seconds -=
            sl.gpus * (sl.step_s * static_cast<double>(sl.steps_left) -
                       (now - sl.seg_start));
        cap.release(sl.alloc);

        JobOutcome &jo = out.jobs[sl.out];
        if (jo.segments.empty())
            jo.segments.push_back({jo.start_time, now});
        else
            jo.segments.push_back({sl.seg_start, now});
        ++jo.preemptions;
        ++out.preemptions;
        if (tl_preemptions)
            tl_preemptions->add();

        steps_remaining[sl.req] = left;
        if (wants_predictions) {
            pred_remaining[sl.req] =
                pred_per_step[sl.req] * static_cast<double>(left);
        }
        pinned_exec[sl.req] = sl.executed;
        pending.push_back(sl.req);

        ++sl.gen; // invalidate the in-flight completion event
        sl.active = false;
        sl.alloc.clear();
        free_slots.push_back(slot);
    };

    // One scheduling pass over the queue at time `now`, under the
    // configured policy. Returns when no further job can start.
    auto schedulePass = [&] {
        switch (cfg_.policy) {
          case Policy::Fifo: {
            while (!pending.empty() && tryPlace(pending.front()))
                pending.pop_front();
            break;
          }
          case Policy::Backfill: {
            if (!cfg_.predictor) {
                // Greedy skip-ahead (the original behavior): any
                // fitting job starts, in queue order.
                bool progress = true;
                while (progress && !pending.empty()) {
                    progress = false;
                    for (auto it = pending.begin();
                         it != pending.end(); ++it) {
                        if (tryPlace(*it)) {
                            pending.erase(it);
                            progress = true;
                            break;
                        }
                    }
                }
                break;
            }
            [[fallthrough]];
          }
          case Policy::Gang: {
            // EASY: drain the head chain, then let later jobs start
            // only when their predicted completion respects the
            // head's reservation. Gang additionally restricts
            // backfill to single-GPU jobs.
            bool gang = cfg_.policy == Policy::Gang;
            bool progress = true;
            while (progress) {
                progress = false;
                while (!pending.empty() &&
                       tryPlace(pending.front())) {
                    pending.pop_front();
                    progress = true;
                }
                if (pending.empty())
                    break;
                double t_res = reservationTime(pending.front());
                for (auto it = std::next(pending.begin());
                     it != pending.end(); ++it) {
                    if (gang && requests[*it].job.num_cnodes > 1)
                        continue;
                    if (std::isfinite(t_res) &&
                        now + pred_remaining[*it] > t_res) {
                        continue;
                    }
                    if (tryPlace(*it)) {
                        pending.erase(it);
                        progress = true;
                        break;
                    }
                }
            }
            break;
          }
          case Policy::Spf:
          case Policy::SpfPreempt: {
            bool progress = true;
            while (progress && !pending.empty()) {
                progress = false;
                std::vector<size_t> order(pending.begin(),
                                          pending.end());
                std::sort(order.begin(), order.end(),
                          [&](size_t a, size_t b) {
                              if (pred_remaining[a] !=
                                  pred_remaining[b]) {
                                  return pred_remaining[a] <
                                         pred_remaining[b];
                              }
                              return a < b;
                          });
                for (size_t req : order) {
                    if (tryPlace(req)) {
                        pending.erase(std::find(pending.begin(),
                                                pending.end(), req));
                        progress = true;
                        break;
                    }
                }
                if (progress ||
                    cfg_.policy != Policy::SpfPreempt ||
                    order.empty()) {
                    continue;
                }
                // Nothing fits. Let the shortest queued job preempt
                // the running job with the longest predicted
                // remaining time, when the imbalance is worth a
                // restart.
                size_t head = order.front();
                while (true) {
                    size_t victim = static_cast<size_t>(-1);
                    double victim_rem = -1.0;
                    for (size_t s = 0; s < slots.size(); ++s) {
                        const Slot &sl = slots[s];
                        if (!sl.active)
                            continue;
                        if (out.jobs[sl.out].preemptions >=
                            cfg_.max_preemptions) {
                            continue;
                        }
                        auto done = static_cast<int64_t>(std::floor(
                            (now - sl.seg_start) / sl.step_s + 1e-9));
                        done = std::clamp<int64_t>(
                            done, 0, sl.steps_left - 1);
                        double rem =
                            pred_per_step[sl.req] *
                            static_cast<double>(sl.steps_left - done);
                        if (rem > victim_rem ||
                            (rem == victim_rem &&
                             victim != static_cast<size_t>(-1) &&
                             sl.out < slots[victim].out)) {
                            victim = s;
                            victim_rem = rem;
                        }
                    }
                    if (victim == static_cast<size_t>(-1) ||
                        victim_rem <= cfg_.preempt_ratio *
                                          pred_remaining[head]) {
                        break;
                    }
                    preempt(victim);
                    if (tryPlace(head)) {
                        pending.erase(std::find(pending.begin(),
                                                pending.end(), head));
                        progress = true;
                        break;
                    }
                }
            }
            break;
          }
        }
    };

    while (arrival < requests.size() || !pending.empty() ||
           engine.pending() > 0) {
        // Admit all submissions up to `now`, dropping jobs the
        // cluster can never host (e.g. more cNodes than NVLink
        // capacity). Admitting them would starve the queue forever
        // under FIFO -- this must hold in release builds too, so it
        // is a counted drop rather than an assert.
        while (arrival < requests.size() &&
               requests[arrival].submit_time <= now) {
            if (placeable(requests[arrival].job)) {
                pending.push_back(arrival);
                if (tl_arrivals)
                    tl_arrivals->add();
            } else {
                ++out.unplaceable_jobs;
                if (tl_unplaceable)
                    tl_unplaceable->add();
                obs::counter("clustersim.unplaceable_jobs").add();
                if (cfg_.record_job_log && obs::jobLogActive()) {
                    const JobRequest &req = requests[arrival];
                    obs::JobRecord rec;
                    rec.job_id = req.job.id;
                    rec.source = "clustersim";
                    rec.status = "dropped";
                    rec.arch = workload::toString(req.job.arch);
                    rec.executed_arch = rec.arch;
                    rec.num_cnodes = req.job.num_cnodes;
                    rec.num_steps = req.num_steps;
                    rec.submit_s = req.submit_time;
                    rec.start_s = req.submit_time;
                    rec.finish_s = req.submit_time;
                    core::TimeBreakdown pred =
                        model_.breakdown(req.job);
                    rec.pred_td_s = pred.t_data;
                    rec.pred_tc_flops_s = pred.t_comp_flops;
                    rec.pred_tc_mem_s = pred.t_comp_mem;
                    rec.pred_tw_s = pred.t_weight;
                    rec.pred_step_s = pred.total();
                    obs::recordJob(std::move(rec));
                }
            }
            ++arrival;
        }

        // Schedule from the queue under the policy.
        schedulePass();
        sampleLevels();

        // Advance time to the next event.
        double next = std::numeric_limits<double>::infinity();
        if (arrival < requests.size())
            next = requests[arrival].submit_time;
        next = std::min(next, engine.nextEventTime());
        if (!std::isfinite(next))
            break; // queue non-empty but nothing can ever finish
        now = std::max(now, next);

        // Fire every completion up to `now` and release its GPUs. A
        // (slot, gen) pair that no longer matches belongs to a
        // preempted-and-restarted job: its stale event is a no-op.
        engine.runUntil(now);
        for (auto &shard_done : finished) {
            for (auto [slot, gen] : shard_done) {
                Slot &sl = slots[slot];
                if (!sl.active || sl.gen != gen)
                    continue;
                cap.release(sl.alloc);
                JobOutcome &jo = out.jobs[sl.out];
                if (!jo.segments.empty())
                    jo.segments.push_back(
                        {sl.seg_start, jo.finish_time});
                emitJobRecord(sl.req, jo, sl.executed,
                              sl.alloc.empty()
                                  ? -1
                                  : sl.alloc.front().first);
                sl.active = false;
                sl.alloc.clear();
                free_slots.push_back(slot);
            }
            shard_done.clear();
        }
        sampleLevels();
    }
    // Every admitted job is placeable on an empty cluster, so the
    // queue always drains once the running set does.
    assert(pending.empty() && "placeable job starved the queue");

    // Aggregate metrics.
    obs::counter("clustersim.jobs_scheduled").add(out.jobs.size());
    obs::counter("clustersim.jobs_ported")
        .add(static_cast<uint64_t>(out.ported_jobs));
    obs::counter("clustersim.preemptions")
        .add(static_cast<uint64_t>(out.preemptions));
    static obs::Histogram &wait_hist =
        obs::histogram("clustersim.wait_s");
    stats::WeightedCdf waits;
    for (const JobOutcome &jo : out.jobs) {
        out.makespan = std::max(out.makespan, jo.finish_time);
        waits.add(jo.wait());
        wait_hist.observe(jo.wait());
    }
    if (!out.jobs.empty()) {
        out.mean_wait = waits.mean();
        out.p95_wait = waits.quantile(0.95);
        double total =
            static_cast<double>(cfg_.num_servers) *
            cfg_.gpus_per_server * out.makespan;
        out.gpu_utilization = total > 0.0 ? gpu_seconds / total : 0.0;
    }
    return out;
}

std::vector<JobRequest>
poissonRequests(const std::vector<TrainingJob> &jobs,
                double jobs_per_hour, double steps_median,
                double steps_sigma, uint64_t seed)
{
    assert(jobs_per_hour > 0.0);
    assert(steps_median >= 1.0 && steps_sigma >= 0.0);
    stats::Rng rng(seed);
    std::vector<JobRequest> requests;
    requests.reserve(jobs.size());
    double rate_per_sec = jobs_per_hour / 3600.0;
    double t = 0.0;
    for (const TrainingJob &job : jobs) {
        t += -std::log(1.0 - rng.uniform()) / rate_per_sec;
        JobRequest req;
        req.job = job;
        req.submit_time = t;
        req.num_steps = std::max<int64_t>(
            1, static_cast<int64_t>(std::llround(rng.logNormal(
                   std::log(steps_median), steps_sigma))));
        requests.push_back(std::move(req));
    }
    return requests;
}

} // namespace paichar::clustersim
