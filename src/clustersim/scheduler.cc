#include "scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

#include "obs/job_log.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "sim/sharded_engine.h"
#include "stats/cdf.h"
#include "stats/rng.h"

namespace paichar::clustersim {

using workload::ArchType;
using workload::TrainingJob;

namespace {

/** (server index, gpus taken) pairs of one job's allocation. */
using Allocation = std::vector<std::pair<int, int>>;

/** Mutable cluster capacity. */
struct Capacity
{
    std::vector<int> free_gpus;
    std::vector<bool> nvlink;

    void
    take(const Allocation &alloc)
    {
        for (auto [s, g] : alloc) {
            free_gpus[static_cast<size_t>(s)] -= g;
            assert(free_gpus[static_cast<size_t>(s)] >= 0);
        }
    }

    void
    release(const Allocation &alloc)
    {
        for (auto [s, g] : alloc)
            free_gpus[static_cast<size_t>(s)] += g;
    }
};

/**
 * Find a single server with @p gpus free. Non-NVLink servers are
 * preferred unless NVLink is required, preserving scarce NVLink
 * capacity for the jobs that need it.
 */
bool
findOneServer(const Capacity &cap, int gpus, bool need_nvlink,
              Allocation *alloc)
{
    int fallback = -1;
    for (size_t s = 0; s < cap.free_gpus.size(); ++s) {
        if (cap.free_gpus[s] < gpus)
            continue;
        if (need_nvlink && !cap.nvlink[s])
            continue;
        if (!need_nvlink && cap.nvlink[s]) {
            if (fallback < 0)
                fallback = static_cast<int>(s);
            continue;
        }
        alloc->assign(1, {static_cast<int>(s), gpus});
        return true;
    }
    if (!need_nvlink && fallback >= 0) {
        alloc->assign(1, {fallback, gpus});
        return true;
    }
    return false;
}

/** Find @p count distinct servers with one free GPU each. */
bool
findSpreadServers(const Capacity &cap, int count, Allocation *alloc)
{
    alloc->clear();
    // Non-NVLink servers first, then NVLink as overflow.
    for (int pass = 0; pass < 2; ++pass) {
        for (size_t s = 0; s < cap.free_gpus.size(); ++s) {
            if (static_cast<int>(alloc->size()) == count)
                return true;
            bool is_nvl = cap.nvlink[s];
            if ((pass == 0 && is_nvl) || (pass == 1 && !is_nvl))
                continue;
            if (cap.free_gpus[s] >= 1)
                alloc->push_back({static_cast<int>(s), 1});
        }
    }
    return static_cast<int>(alloc->size()) == count;
}

} // namespace

ClusterScheduler::ClusterScheduler(const SchedulerConfig &cfg,
                                   const core::AnalyticalModel &model)
    : cfg_(cfg), model_(model)
{
    assert(cfg_.num_servers >= 1);
    assert(cfg_.gpus_per_server >= 1);
    assert(cfg_.nvlink_fraction >= 0.0 && cfg_.nvlink_fraction <= 1.0);
}

bool
ClusterScheduler::placeable(const TrainingJob &job) const
{
    int nvl_servers = static_cast<int>(cfg_.num_servers *
                                       cfg_.nvlink_fraction);
    switch (job.arch) {
      case ArchType::OneWorkerOneGpu:
        return true;
      case ArchType::OneWorkerMultiGpu:
      case ArchType::Pearl:
        return job.num_cnodes <= cfg_.gpus_per_server &&
               (job.arch != ArchType::Pearl || nvl_servers >= 1);
      case ArchType::PsWorker:
        return job.num_cnodes <= cfg_.num_servers;
      case ArchType::AllReduceLocal:
        return job.num_cnodes <= cfg_.gpus_per_server &&
               nvl_servers >= 1;
      case ArchType::AllReduceCluster:
        return nvl_servers * cfg_.gpus_per_server >= job.num_cnodes;
    }
    return false;
}

ClusterOutcome
ClusterScheduler::run(std::vector<JobRequest> requests) const
{
    obs::Span run_span("clustersim.run",
                       static_cast<int64_t>(requests.size()));
    static obs::Counter &placement_attempts =
        obs::counter("clustersim.placement_attempts");
    static obs::Counter &placement_failures =
        obs::counter("clustersim.placement_failures");

    std::stable_sort(requests.begin(), requests.end(),
                     [](const JobRequest &a, const JobRequest &b) {
                         return a.submit_time < b.submit_time;
                     });

    Capacity cap;
    cap.free_gpus.assign(static_cast<size_t>(cfg_.num_servers),
                         cfg_.gpus_per_server);
    cap.nvlink.assign(static_cast<size_t>(cfg_.num_servers), false);
    int nvl_servers = static_cast<int>(cfg_.num_servers *
                                       cfg_.nvlink_fraction);
    for (int s = 0; s < nvl_servers; ++s)
        cap.nvlink[static_cast<size_t>(s)] = true;

    // Completion events run on a sharded discrete-event engine: a
    // job's finish event lives on the shard of its first allocated
    // server, so completions at the same timestamp on different
    // domains drain in parallel. Releases commute (they only add
    // capacity back), which keeps the outcome byte-identical for any
    // shard count, including the serial shards=1 fast path.
    int num_shards = sim::shardCount();
    sim::ShardedEngine engine(num_shards, /*lookahead=*/0.0,
                              runtime::globalPool());

    // Allocations of in-flight jobs, indexed by slot; finished slots
    // are recycled through a free list so long traces do not grow the
    // table past the peak concurrency.
    std::vector<Allocation> slots;
    std::vector<size_t> free_slots;
    // Per-shard buffers of slots whose jobs finished in the last
    // drain; a shard's completion callbacks are the only writers of
    // its buffer, so no locks are needed.
    std::vector<std::vector<size_t>> finished(
        static_cast<size_t>(engine.numShards()));

    ClusterOutcome out;
    out.jobs.reserve(requests.size());
    std::deque<size_t> pending; // indices into requests
    size_t arrival = 0;
    double now = 0.0;
    double gpu_seconds = 0.0;

    // As-submitted step times are pure per-job model evaluations:
    // price them up front in parallel. Ported placements execute a
    // different architecture and are priced on demand.
    std::vector<double> submitted_step = runtime::parallelMap<double>(
        runtime::globalPool(), requests.size(), [&](size_t i) {
            return model_.stepTime(requests[i].job);
        });

    // Per-request attempt counts, recorded in the job log so queue
    // behavior (how often the head was retried) is visible per job.
    std::vector<int64_t> attempts(requests.size(), 0);

    // Attempt to place one request; on success records the outcome
    // and consumes capacity.
    auto tryPlace = [&](size_t req_index) -> bool {
        const JobRequest &req = requests[req_index];
        placement_attempts.add();
        ++attempts[req_index];
        const TrainingJob &job = req.job;
        Allocation alloc;
        TrainingJob executed = job;
        bool ported = false;

        if (cfg_.port_ps_to_allreduce &&
            job.arch == ArchType::PsWorker &&
            job.features.weightBytes() <= cfg_.gpu_memory_bytes) {
            int n = std::min(job.num_cnodes, cfg_.gpus_per_server);
            if (findOneServer(cap, n, /*need_nvlink=*/true, &alloc)) {
                executed.arch = ArchType::AllReduceLocal;
                executed.num_cnodes = n;
                executed.num_ps = 0;
                ported = true;
            }
        }
        if (!ported) {
            bool found = false;
            switch (job.arch) {
              case ArchType::OneWorkerOneGpu:
                found = findOneServer(cap, 1, false, &alloc);
                break;
              case ArchType::OneWorkerMultiGpu:
                found = findOneServer(cap, job.num_cnodes, false,
                                      &alloc);
                break;
              case ArchType::PsWorker:
                found = findSpreadServers(cap, job.num_cnodes,
                                          &alloc);
                break;
              case ArchType::AllReduceLocal:
              case ArchType::Pearl:
                found = findOneServer(cap, job.num_cnodes, true,
                                      &alloc);
                break;
              case ArchType::AllReduceCluster: {
                // Whole NVLink servers, packed.
                int need = job.num_cnodes;
                alloc.clear();
                for (size_t s = 0;
                     s < cap.free_gpus.size() && need > 0; ++s) {
                    if (!cap.nvlink[s] ||
                        cap.free_gpus[s] < cfg_.gpus_per_server) {
                        continue;
                    }
                    int take =
                        std::min(need, cfg_.gpus_per_server);
                    alloc.push_back({static_cast<int>(s), take});
                    need -= take;
                }
                found = need == 0;
                break;
              }
            }
            if (!found) {
                placement_failures.add();
                return false;
            }
        }

        cap.take(alloc);
        double step = ported ? model_.stepTime(executed)
                             : submitted_step[req_index];
        double runtime = step * static_cast<double>(req.num_steps);

        JobOutcome jo;
        jo.job_id = job.id;
        jo.submit_time = req.submit_time;
        jo.start_time = now;
        jo.finish_time = now + runtime;
        jo.executed_arch = executed.arch;
        jo.ported = ported;
        for (auto [s, g] : alloc) {
            (void)s;
            jo.gpus += g;
        }
        gpu_seconds += jo.gpus * runtime;
        out.ported_jobs += ported;

        if (obs::jobLogActive()) {
            obs::JobRecord rec;
            rec.job_id = jo.job_id;
            rec.source = "clustersim";
            rec.arch = workload::toString(job.arch);
            rec.executed_arch = workload::toString(executed.arch);
            rec.ported = ported;
            rec.num_cnodes = executed.num_cnodes;
            rec.gpus = jo.gpus;
            rec.server = alloc.empty() ? -1 : alloc.front().first;
            rec.num_steps = req.num_steps;
            rec.placement_attempts = attempts[req_index];
            rec.submit_s = jo.submit_time;
            rec.start_s = jo.start_time;
            rec.finish_s = jo.finish_time;
            // Predicted = the job as submitted; simulated = the job
            // as executed under its actual placement, so porting and
            // clamping effects become the recorded skew.
            core::TimeBreakdown pred = model_.breakdown(job);
            rec.pred_td_s = pred.t_data;
            rec.pred_tc_flops_s = pred.t_comp_flops;
            rec.pred_tc_mem_s = pred.t_comp_mem;
            rec.pred_tw_s = pred.t_weight;
            rec.pred_step_s = pred.total();
            core::TimeBreakdown sim = model_.breakdown(executed);
            rec.sim_td_s = sim.t_data;
            rec.sim_tc_s = sim.compute();
            rec.sim_tw_s = sim.t_weight;
            rec.sim_step_s = step;
            obs::recordJob(std::move(rec));
        }

        out.jobs.push_back(jo);
        if (std::isfinite(jo.finish_time)) {
            size_t slot;
            if (!free_slots.empty()) {
                slot = free_slots.back();
                free_slots.pop_back();
                slots[slot] = std::move(alloc);
            } else {
                slot = slots.size();
                slots.push_back(std::move(alloc));
            }
            int shard = slots[slot].front().first %
                        engine.numShards();
            engine.schedule(shard, jo.finish_time,
                            [&finished, shard, slot] {
                                finished[static_cast<size_t>(shard)]
                                    .push_back(slot);
                            });
        }
        // A non-finite finish never fires: the job holds its GPUs
        // forever, exactly as the old priority-queue loop (which
        // broke out before ever popping it) behaved.
        return true;
    };

    while (arrival < requests.size() || !pending.empty() ||
           engine.pending() > 0) {
        // Admit all submissions up to `now`, dropping jobs the
        // cluster can never host (e.g. more cNodes than NVLink
        // capacity). Admitting them would starve the queue forever
        // under FCFS -- this must hold in release builds too, so it
        // is a counted drop rather than an assert.
        while (arrival < requests.size() &&
               requests[arrival].submit_time <= now) {
            if (placeable(requests[arrival].job)) {
                pending.push_back(arrival);
            } else {
                ++out.unplaceable_jobs;
                obs::counter("clustersim.unplaceable_jobs").add();
                if (obs::jobLogActive()) {
                    const JobRequest &req = requests[arrival];
                    obs::JobRecord rec;
                    rec.job_id = req.job.id;
                    rec.source = "clustersim";
                    rec.status = "dropped";
                    rec.arch = workload::toString(req.job.arch);
                    rec.executed_arch = rec.arch;
                    rec.num_cnodes = req.job.num_cnodes;
                    rec.num_steps = req.num_steps;
                    rec.submit_s = req.submit_time;
                    rec.start_s = req.submit_time;
                    rec.finish_s = req.submit_time;
                    core::TimeBreakdown pred =
                        model_.breakdown(req.job);
                    rec.pred_td_s = pred.t_data;
                    rec.pred_tc_flops_s = pred.t_comp_flops;
                    rec.pred_tc_mem_s = pred.t_comp_mem;
                    rec.pred_tw_s = pred.t_weight;
                    rec.pred_step_s = pred.total();
                    obs::recordJob(std::move(rec));
                }
            }
            ++arrival;
        }

        // Schedule from the queue under the policy.
        bool progress = true;
        while (progress && !pending.empty()) {
            progress = false;
            if (cfg_.policy == Policy::Fcfs) {
                if (tryPlace(pending.front())) {
                    pending.pop_front();
                    progress = true;
                }
            } else {
                for (auto it = pending.begin();
                     it != pending.end(); ++it) {
                    if (tryPlace(*it)) {
                        pending.erase(it);
                        progress = true;
                        break;
                    }
                }
            }
        }

        // Advance time to the next event.
        double next = std::numeric_limits<double>::infinity();
        if (arrival < requests.size())
            next = requests[arrival].submit_time;
        next = std::min(next, engine.nextEventTime());
        if (!std::isfinite(next))
            break; // queue non-empty but nothing can ever finish
        now = std::max(now, next);

        // Fire every completion up to `now` and release its GPUs.
        engine.runUntil(now);
        for (std::vector<size_t> &shard_done : finished) {
            for (size_t slot : shard_done) {
                cap.release(slots[slot]);
                slots[slot].clear();
                free_slots.push_back(slot);
            }
            shard_done.clear();
        }
    }
    // Every admitted job is placeable on an empty cluster, so the
    // queue always drains once the running set does.
    assert(pending.empty() && "placeable job starved the queue");

    // Aggregate metrics.
    obs::counter("clustersim.jobs_scheduled").add(out.jobs.size());
    obs::counter("clustersim.jobs_ported")
        .add(static_cast<uint64_t>(out.ported_jobs));
    static obs::Histogram &wait_hist =
        obs::histogram("clustersim.wait_s");
    stats::WeightedCdf waits;
    for (const JobOutcome &jo : out.jobs) {
        out.makespan = std::max(out.makespan, jo.finish_time);
        waits.add(jo.wait());
        wait_hist.observe(jo.wait());
    }
    if (!out.jobs.empty()) {
        out.mean_wait = waits.mean();
        out.p95_wait = waits.quantile(0.95);
        double total =
            static_cast<double>(cfg_.num_servers) *
            cfg_.gpus_per_server * out.makespan;
        out.gpu_utilization = total > 0.0 ? gpu_seconds / total : 0.0;
    }
    return out;
}

std::vector<JobRequest>
poissonRequests(const std::vector<TrainingJob> &jobs,
                double jobs_per_hour, double steps_median,
                double steps_sigma, uint64_t seed)
{
    assert(jobs_per_hour > 0.0);
    assert(steps_median >= 1.0 && steps_sigma >= 0.0);
    stats::Rng rng(seed);
    std::vector<JobRequest> requests;
    requests.reserve(jobs.size());
    double rate_per_sec = jobs_per_hour / 3600.0;
    double t = 0.0;
    for (const TrainingJob &job : jobs) {
        t += -std::log(1.0 - rng.uniform()) / rate_per_sec;
        JobRequest req;
        req.job = job;
        req.submit_time = t;
        req.num_steps = std::max<int64_t>(
            1, static_cast<int64_t>(std::llround(rng.logNormal(
                   std::log(steps_median), steps_sigma))));
        requests.push_back(std::move(req));
    }
    return requests;
}

} // namespace paichar::clustersim
