/**
 * @file
 * History-trained job-duration and queueing-delay estimators
 * (DESIGN.md Sec 13).
 *
 * Hu et al. (arXiv:2109.01313) show that simple predictors fit on a
 * cluster's own job history recover most of the queueing time lost to
 * FIFO scheduling. The `--job-log` JobRecord stream (DESIGN.md Sec 10)
 * is exactly that history: every completed job carries its
 * architecture, scale, step count and measured queue/run seconds.
 * This module fits two deterministic, dependency-free models on a
 * recorded log:
 *
 *  - QuantileDurationModel: empirical per-step run-time quantiles
 *    bucketed by (architecture, log2 scale). Prediction looks up the
 *    most specific bucket with history and multiplies the configured
 *    quantile by the job's step count. Monotone in q by construction.
 *  - LinearDurationModel: closed-form least squares of recorded run
 *    seconds on the analytical model's predicted run seconds -- a
 *    one-knob recalibration of the model against observed behavior.
 *
 * plus QueueDelayModel, the same quantile construction over recorded
 * queue seconds bucketed by GPU demand, for answering "how long will
 * a job like this wait" before submitting it.
 *
 * Every model is a pure function of the record vector it was fit on:
 * fitting is single-pass over a deterministic bucket order and never
 * consults global state, so fits are identical for any `--threads`
 * count. When a query finds no matching history at all, the model
 * falls back to the caller-supplied analytical prediction (duration)
 * or zero (queue delay) and counts the event in the
 * `predict.cold_start` metric -- a cold predictor degrades to the
 * paper's analytical model, never to garbage.
 */

#ifndef PAICHAR_PREDICT_PREDICTOR_H
#define PAICHAR_PREDICT_PREDICTOR_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/job_log.h"
#include "workload/training_job.h"

namespace paichar::predict {

/**
 * A fitted job-duration estimator. predictRunSeconds() maps the
 * features known at submit time -- the job, its training length, and
 * the analytical model's run-time prediction -- to expected run
 * seconds. Implementations must be deterministic and side-effect free
 * apart from the predict.cold_start counter.
 */
class DurationModel
{
  public:
    virtual ~DurationModel() = default;

    /**
     * @param job          The job as submitted.
     * @param num_steps    Training length in steps.
     * @param model_run_s  The analytical model's predicted run
     *                     seconds (stepTime * num_steps); the
     *                     cold-start fallback.
     */
    virtual double predictRunSeconds(const workload::TrainingJob &job,
                                     int64_t num_steps,
                                     double model_run_s) const = 0;

    /** Records this model was fit on (0 = everything cold-starts). */
    virtual size_t sampleCount() const = 0;
};

/**
 * Empirical quantile model over per-step run seconds.
 *
 * Buckets are keyed by (architecture name, floor(log2(num_cnodes))):
 * the paper's populations differ by orders of magnitude across
 * architectures and scales, so a single global quantile would be
 * dominated by the 1w1g majority. Lookup degrades gracefully:
 * exact bucket -> any-scale architecture bucket -> global bucket ->
 * analytical fallback (counted in predict.cold_start).
 */
class QuantileDurationModel : public DurationModel
{
  public:
    /**
     * Fit on completed records of @p history.
     * @param q Quantile in [0, 1]; 0.5 = median predictor.
     * @throws std::invalid_argument unless q is in [0, 1].
     */
    QuantileDurationModel(const std::vector<obs::JobRecord> &history,
                          double q);

    double predictRunSeconds(const workload::TrainingJob &job,
                             int64_t num_steps,
                             double model_run_s) const override;

    size_t sampleCount() const override { return samples_; }

    double quantile() const { return q_; }

  private:
    /** Sorted per-step run-time samples of one bucket. */
    const std::vector<double> *lookup(const workload::TrainingJob &job)
        const;

    std::map<std::string, std::vector<double>> buckets_;
    std::map<std::string, std::vector<double>> arch_buckets_;
    std::vector<double> global_;
    double q_;
    size_t samples_ = 0;
};

/**
 * Least-squares recalibration of the analytical model: fits
 * run_s = a + b * pred_run_s on completed history records (closed
 * form, no iteration). Degenerate fits (fewer than two distinct
 * predictor values) keep the identity a=0, b=1, so the model never
 * predicts worse than the analytical baseline it recalibrates.
 * Predictions are clamped non-negative.
 */
class LinearDurationModel : public DurationModel
{
  public:
    explicit LinearDurationModel(
        const std::vector<obs::JobRecord> &history);

    double predictRunSeconds(const workload::TrainingJob &job,
                             int64_t num_steps,
                             double model_run_s) const override;

    size_t sampleCount() const override { return samples_; }

    double intercept() const { return a_; }
    double slope() const { return b_; }

  private:
    double a_ = 0.0;
    double b_ = 1.0;
    size_t samples_ = 0;
};

/**
 * Queueing-delay estimator: empirical quantiles of recorded queue
 * seconds bucketed by floor(log2(GPU demand)), falling back to the
 * global distribution, then to 0 seconds (cold start, counted).
 */
class QueueDelayModel
{
  public:
    /** @throws std::invalid_argument unless q is in [0, 1]. */
    QueueDelayModel(const std::vector<obs::JobRecord> &history,
                    double q);

    /** Expected queue seconds for a job demanding @p gpus GPUs. */
    double predictQueueSeconds(int gpus) const;

    size_t sampleCount() const { return samples_; }

  private:
    std::map<int, std::vector<double>> buckets_;
    std::vector<double> global_;
    double q_;
    size_t samples_ = 0;
};

/** Value at quantile @p q of @p sorted (ascending, non-empty):
 * smallest element v with P(X <= v) >= q, the WeightedCdf convention.
 * @throws std::invalid_argument unless q is in [0, 1]. */
double sortedQuantile(const std::vector<double> &sorted, double q);

/** Bucket key for a duration sample: "<arch>/<floor(log2 n)>". */
std::string durationBucketKey(const std::string &arch, int num_cnodes);

} // namespace paichar::predict

#endif // PAICHAR_PREDICT_PREDICTOR_H
