#include "predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "workload/arch_type.h"

namespace paichar::predict {

namespace {

/** Completed records with usable run times are the training set. */
bool
usable(const obs::JobRecord &rec)
{
    return rec.status == "completed" && rec.num_steps >= 1 &&
           std::isfinite(rec.runSeconds()) && rec.runSeconds() >= 0.0;
}

void
requireQuantile(double q)
{
    if (!(q >= 0.0 && q <= 1.0))
        throw std::invalid_argument(
            "predict: quantile must be in [0, 1], got " +
            std::to_string(q));
}

obs::Counter &
coldStartCounter()
{
    static obs::Counter &c = obs::counter("predict.cold_start");
    return c;
}

int
log2Bucket(int n)
{
    int b = 0;
    for (int v = std::max(n, 1); v > 1; v >>= 1)
        ++b;
    return b;
}

} // namespace

std::string
durationBucketKey(const std::string &arch, int num_cnodes)
{
    return arch + "/" + std::to_string(log2Bucket(num_cnodes));
}

double
sortedQuantile(const std::vector<double> &sorted, double q)
{
    requireQuantile(q);
    // Smallest v with P(X <= v) >= q over equal weights: index
    // ceil(q*n) - 1, clamped into range (q = 0 -> the minimum).
    double n = static_cast<double>(sorted.size());
    auto idx = static_cast<size_t>(
        std::max(0.0, std::ceil(q * n) - 1.0));
    return sorted[std::min(idx, sorted.size() - 1)];
}

QuantileDurationModel::QuantileDurationModel(
    const std::vector<obs::JobRecord> &history, double q)
    : q_(q)
{
    requireQuantile(q);
    for (const obs::JobRecord &rec : history) {
        if (!usable(rec))
            continue;
        double per_step =
            rec.runSeconds() / static_cast<double>(rec.num_steps);
        buckets_[durationBucketKey(rec.arch, rec.num_cnodes)]
            .push_back(per_step);
        arch_buckets_[rec.arch].push_back(per_step);
        global_.push_back(per_step);
        ++samples_;
    }
    for (auto &[key, v] : buckets_)
        std::sort(v.begin(), v.end());
    for (auto &[key, v] : arch_buckets_)
        std::sort(v.begin(), v.end());
    std::sort(global_.begin(), global_.end());
}

const std::vector<double> *
QuantileDurationModel::lookup(const workload::TrainingJob &job) const
{
    std::string arch = workload::toString(job.arch);
    auto it = buckets_.find(durationBucketKey(arch, job.num_cnodes));
    if (it != buckets_.end())
        return &it->second;
    auto ait = arch_buckets_.find(arch);
    if (ait != arch_buckets_.end())
        return &ait->second;
    if (!global_.empty())
        return &global_;
    return nullptr;
}

double
QuantileDurationModel::predictRunSeconds(
    const workload::TrainingJob &job, int64_t num_steps,
    double model_run_s) const
{
    const std::vector<double> *bucket = lookup(job);
    if (bucket == nullptr) {
        coldStartCounter().add();
        return model_run_s;
    }
    return sortedQuantile(*bucket, q_) *
           static_cast<double>(num_steps);
}

LinearDurationModel::LinearDurationModel(
    const std::vector<obs::JobRecord> &history)
{
    // Closed-form least squares of run_s on the analytical
    // prediction pred_step_s * num_steps. Records without a recorded
    // prediction cannot recalibrate anything and are skipped.
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    double n = 0.0;
    for (const obs::JobRecord &rec : history) {
        if (!usable(rec) || !(rec.pred_step_s > 0.0))
            continue;
        double x =
            rec.pred_step_s * static_cast<double>(rec.num_steps);
        double y = rec.runSeconds();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        n += 1.0;
        ++samples_;
    }
    double denom = n * sxx - sx * sx;
    // Fewer than two distinct x values make the slope indeterminate;
    // keep the identity so the model degrades to the analytical one.
    if (n >= 2.0 && std::abs(denom) > 1e-12 * std::max(1.0, sxx)) {
        b_ = (n * sxy - sx * sy) / denom;
        a_ = (sy - b_ * sx) / n;
    }
}

double
LinearDurationModel::predictRunSeconds(const workload::TrainingJob &,
                                       int64_t,
                                       double model_run_s) const
{
    if (samples_ == 0) {
        coldStartCounter().add();
        return model_run_s;
    }
    return std::max(0.0, a_ + b_ * model_run_s);
}

QueueDelayModel::QueueDelayModel(
    const std::vector<obs::JobRecord> &history, double q)
    : q_(q)
{
    requireQuantile(q);
    for (const obs::JobRecord &rec : history) {
        if (rec.status != "completed")
            continue;
        double wait = rec.queueSeconds();
        if (!std::isfinite(wait) || wait < 0.0)
            continue;
        buckets_[log2Bucket(std::max(rec.gpus, 1))].push_back(wait);
        global_.push_back(wait);
        ++samples_;
    }
    for (auto &[key, v] : buckets_)
        std::sort(v.begin(), v.end());
    std::sort(global_.begin(), global_.end());
}

double
QueueDelayModel::predictQueueSeconds(int gpus) const
{
    auto it = buckets_.find(log2Bucket(std::max(gpus, 1)));
    if (it != buckets_.end())
        return sortedQuantile(it->second, q_);
    if (!global_.empty())
        return sortedQuantile(global_, q_);
    coldStartCounter().add();
    return 0.0;
}

} // namespace paichar::predict
