#include "model_zoo.h"

#include <cassert>
#include <cmath>

#include "hw/units.h"

namespace paichar::workload {

namespace {

using hw::kGB;
using hw::kKB;
using hw::kMB;
using hw::kTFLOPs;
using hw::kGFLOPs;

/**
 * Convenience wrapper that builds a forward graph and can then mirror
 * it into a backward pass (grad ops cost ~2x the forward compute, and
 * element-wise gradients touch the same tensor volumes), plus one
 * optimizer-update element-wise op per weight-carrying forward op.
 *
 * All costs set here are *relative*; the caller pins aggregate totals
 * to Table V via OpGraph::scaleToTargets afterwards.
 */
class GraphBuilder
{
  public:
    OpId
    dataLoad(double bytes)
    {
        Op op;
        op.name = "input/memcpy_h2d";
        op.type = OpType::DataLoad;
        op.mem_bytes = bytes;
        op.output_bytes = bytes;
        last_ = graph_.addOp(op);
        return last_;
    }

    OpId
    compute(OpType type, const std::string &name, double flops,
            double tensor_bytes)
    {
        assert(isComputeBound(type));
        Op op;
        op.name = name;
        op.type = type;
        op.flops = flops;
        op.mem_bytes = tensor_bytes;
        op.output_bytes = tensor_bytes;
        op.inputs = lastAsInputs();
        last_ = graph_.addOp(op);
        fwd_.push_back(last_);
        return last_;
    }

    OpId
    memory(OpType type, const std::string &name, double traffic_bytes,
           double output_bytes)
    {
        assert(!isComputeBound(type) && type != OpType::DataLoad);
        Op op;
        op.name = name;
        op.type = type;
        op.mem_bytes = traffic_bytes;
        op.output_bytes = output_bytes;
        op.inputs = lastAsInputs();
        last_ = graph_.addOp(op);
        fwd_.push_back(last_);
        return last_;
    }

    /** Element-wise op whose traffic is read(in) + write(out). */
    OpId
    elementWise(const std::string &name, double tensor_bytes)
    {
        return memory(OpType::ElementWise, name, 2.0 * tensor_bytes,
                      tensor_bytes);
    }

    /**
     * Append the backward pass: one gradient op per forward op in
     * reverse order, 2x compute cost for compute-bound ops (dgrad +
     * wgrad), equal memory traffic for memory-bound ones; then one
     * optimizer-update element-wise op per weight-carrying op.
     */
    void
    mirrorBackward()
    {
        std::vector<OpId> weight_ops;
        for (auto it = fwd_.rbegin(); it != fwd_.rend(); ++it) {
            const Op fop = graph_.op(*it); // copy: addOp may reallocate
            Op g;
            g.name = fop.name + "_grad";
            g.inputs = {last_};
            if (isComputeBound(fop.type)) {
                g.type = fop.type;
                g.flops = 2.0 * fop.flops;
                g.mem_bytes = 2.0 * fop.mem_bytes;
                g.output_bytes = fop.output_bytes;
                weight_ops.push_back(fop.id);
            } else {
                g.type = fop.type == OpType::EmbeddingLookup
                             ? OpType::EmbeddingLookup
                             : OpType::ElementWise;
                g.mem_bytes = fop.mem_bytes;
                g.output_bytes = fop.output_bytes;
                if (fop.type == OpType::EmbeddingLookup)
                    weight_ops.push_back(fop.id);
            }
            last_ = graph_.addOp(g);
        }
        for (OpId wid : weight_ops) {
            const Op &w = graph_.op(wid);
            Op u;
            u.name = w.name + "_update";
            u.type = OpType::ElementWise;
            // Momentum-style update reads grad + weight + momentum and
            // writes weight + momentum; proportional to the layer size.
            u.mem_bytes = 0.5 * w.mem_bytes;
            u.output_bytes = 0.25 * w.mem_bytes;
            u.inputs = {last_};
            last_ = graph_.addOp(u);
        }
    }

    OpGraph take() { return std::move(graph_); }

  private:
    std::vector<OpId>
    lastAsInputs() const
    {
        if (last_ < 0)
            return {};
        return {last_};
    }

    OpGraph graph_;
    std::vector<OpId> fwd_;
    OpId last_ = -1;
};

/** Proportional split of comm volume between dense and embedding. */
void
splitComm(CaseStudyModel &m)
{
    double dense = m.features.dense_weight_bytes;
    double emb = m.features.embedding_weight_bytes;
    double total = dense + emb;
    m.features.embedding_comm_bytes =
        total > 0.0 ? m.features.comm_bytes * emb / total : 0.0;
}

} // namespace

CaseStudyModel
ModelZoo::resnet50()
{
    return resnet(ResNetConfig{});
}

namespace {

/** Structure and relative cost of the standard residual depths. */
struct ResNetShape
{
    int blocks[4];       ///< blocks per stage
    int convs_per_block; ///< 2 (basic) or 3 (bottleneck)
    double rel_flops;    ///< forward GFLOPs relative to ResNet50
    double rel_params;   ///< parameters relative to ResNet50
};

ResNetShape
resnetShape(int depth)
{
    switch (depth) {
      case 18:
        return {{2, 2, 2, 2}, 2, 1.8 / 4.1, 11.7 / 25.6};
      case 34:
        return {{3, 4, 6, 3}, 2, 3.6 / 4.1, 21.8 / 25.6};
      case 50:
        return {{3, 4, 6, 3}, 3, 1.0, 1.0};
      case 101:
        return {{3, 4, 23, 3}, 3, 7.8 / 4.1, 44.5 / 25.6};
      case 152:
        return {{3, 8, 36, 3}, 3, 11.5 / 4.1, 60.2 / 25.6};
      default:
        assert(false && "supported depths: 18, 34, 50, 101, 152");
        return {{3, 4, 6, 3}, 3, 1.0, 1.0};
    }
}

} // namespace

CaseStudyModel
ModelZoo::resnet(const ResNetConfig &cfg)
{
    assert(cfg.batch_size > 0);
    const ResNetShape shape = resnetShape(cfg.depth);
    const double batch_ratio = cfg.batch_size / 64.0;
    const double demand = shape.rel_flops * batch_ratio;

    CaseStudyModel m;
    m.name = "ResNet" + std::to_string(cfg.depth);
    m.domain = "CV";
    m.arch = ArchType::AllReduceLocal;
    m.num_cnodes = 8;
    m.features.batch_size = cfg.batch_size;
    // Anchored to the Table V ResNet50 row and scaled by the family's
    // published relative costs.
    m.features.flop_count = 1.56 * kTFLOPs * demand;
    m.features.mem_access_bytes = 31.9 * kGB * demand;
    m.features.input_bytes = 38 * kMB * batch_ratio;
    m.features.comm_bytes = 357 * kMB * shape.rel_params;
    m.features.dense_weight_bytes = 204 * kMB * shape.rel_params;
    m.features.embedding_weight_bytes = 0.0;
    m.measured_efficiency = {0.8255, 0.789, 0.351, 0.494};
    splitComm(m);

    GraphBuilder b;
    b.dataLoad(m.features.input_bytes);
    const double act = 30 * kMB * batch_ratio;
    b.compute(OpType::Conv, "stem/conv7x7", 120 * kGFLOPs, 2.0 * act);
    b.memory(OpType::Normalization, "stem/bn", 2.0 * act, act);
    b.elementWise("stem/relu", act);
    b.memory(OpType::Reduction, "stem/maxpool", 2.0 * act, act / 4);
    for (int stage = 0; stage < 4; ++stage) {
        double a = act / (1 << stage); // activations shrink per stage
        for (int blk = 0; blk < shape.blocks[stage]; ++blk) {
            std::string p = "stage" + std::to_string(stage + 1) +
                            "/block" + std::to_string(blk + 1) + "/";
            for (int c = 0; c < shape.convs_per_block; ++c) {
                double f = (c == 1 ? 90.0 : 30.0) * kGFLOPs;
                b.compute(OpType::Conv,
                          p + "conv" + std::to_string(c + 1), f, 2.0 * a);
                b.memory(OpType::Normalization,
                         p + "bn" + std::to_string(c + 1), 2.0 * a, a);
                b.elementWise(p + "relu" + std::to_string(c + 1), a);
            }
            b.elementWise(p + "residual_add", a);
        }
    }
    b.memory(OpType::Reduction, "head/avgpool", 4 * kMB, 0.5 * kMB);
    b.compute(OpType::MatMul, "head/fc", 0.5 * kGFLOPs, 1 * kMB);
    b.memory(OpType::Reduction, "head/softmax_xent", 2 * kMB, 4 * kKB);
    b.mirrorBackward();

    m.graph = b.take();
    m.graph.scaleToTargets(m.features.flop_count,
                           m.features.mem_access_bytes,
                           m.features.input_bytes);
    return m;
}

namespace {

/** Shared transformer-stack emitter used by NMT and BERT. */
void
emitTransformerLayers(GraphBuilder &b, const std::string &prefix,
                      int layers, double act, double gemm_flops)
{
    for (int l = 0; l < layers; ++l) {
        std::string p =
            prefix + "/layer" + std::to_string(l) + "/";
        b.compute(OpType::MatMul, p + "attn/qkv", 3.0 * gemm_flops,
                  3.0 * act);
        b.compute(OpType::MatMul, p + "attn/scores", 0.5 * gemm_flops,
                  act);
        b.memory(OpType::Reduction, p + "attn/softmax", 3.0 * act, act);
        b.compute(OpType::MatMul, p + "attn/context", 0.5 * gemm_flops,
                  act);
        b.compute(OpType::MatMul, p + "attn/out_proj", gemm_flops, act);
        b.elementWise(p + "attn/residual_add", act);
        b.memory(OpType::Normalization, p + "attn/layernorm", 3.0 * act,
                 act);
        b.compute(OpType::MatMul, p + "ffn/in", 4.0 * gemm_flops,
                  4.0 * act);
        b.elementWise(p + "ffn/gelu", 4.0 * act);
        b.compute(OpType::MatMul, p + "ffn/out", 4.0 * gemm_flops, act);
        b.elementWise(p + "ffn/residual_add", act);
        b.memory(OpType::Normalization, p + "ffn/layernorm", 3.0 * act,
                 act);
    }
}

} // namespace

CaseStudyModel
ModelZoo::nmt()
{
    CaseStudyModel m;
    m.name = "NMT";
    m.domain = "Translation";
    m.arch = ArchType::AllReduceLocal;
    m.num_cnodes = 8;
    m.features.batch_size = 6144;
    m.features.flop_count = 2.5 * kTFLOPs;
    m.features.mem_access_bytes = 101.6 * kGB;
    m.features.input_bytes = 22 * kKB;
    m.features.comm_bytes = 1.33 * kGB;
    m.features.dense_weight_bytes = 706 * kMB;
    m.features.embedding_weight_bytes = 819 * kMB;
    m.measured_efficiency = {0.828, 0.791, 0.001, 0.352};
    splitComm(m);

    GraphBuilder b;
    b.dataLoad(m.features.input_bytes);
    const double act = 25 * kMB;
    b.memory(OpType::EmbeddingLookup, "src_embedding", 2.0 * act, act);
    emitTransformerLayers(b, "encoder", 6, act, 60 * kGFLOPs);
    b.memory(OpType::EmbeddingLookup, "tgt_embedding", 2.0 * act, act);
    emitTransformerLayers(b, "decoder", 6, act, 60 * kGFLOPs);
    b.compute(OpType::MatMul, "output_projection", 400 * kGFLOPs,
              8.0 * act);
    b.memory(OpType::Reduction, "softmax_xent", 16.0 * act, 4 * kKB);
    b.mirrorBackward();

    m.graph = b.take();
    m.graph.scaleToTargets(m.features.flop_count,
                           m.features.mem_access_bytes,
                           m.features.input_bytes);
    return m;
}

CaseStudyModel
ModelZoo::bert()
{
    return transformer(TransformerConfig{});
}

CaseStudyModel
ModelZoo::transformer(const TransformerConfig &cfg)
{
    assert(cfg.layers >= 1 && cfg.width_ratio > 0.0 &&
           cfg.batch_size > 0.0);
    const double layer_ratio = cfg.layers / 24.0;
    const double batch_ratio = cfg.batch_size / 12.0;
    // Per-layer compute scales with width^2, activations with width.
    const double w2 = cfg.width_ratio * cfg.width_ratio;
    const double demand = layer_ratio * batch_ratio;

    CaseStudyModel m;
    m.name = cfg.layers == 24 && cfg.width_ratio == 1.0
                 ? "BERT"
                 : "Transformer-" + std::to_string(cfg.layers) + "L";
    m.domain = "QA";
    m.arch = ArchType::AllReduceLocal;
    m.num_cnodes = 8;
    m.features.batch_size = cfg.batch_size;
    m.features.flop_count = 2.1 * kTFLOPs * demand * w2;
    m.features.mem_access_bytes =
        107.3 * kGB * demand * cfg.width_ratio;
    m.features.input_bytes = 46 * kKB * batch_ratio;
    m.features.comm_bytes = 1.5 * kGB * layer_ratio * w2;
    m.features.dense_weight_bytes = 1.0 * kGB * layer_ratio * w2;
    m.features.embedding_weight_bytes = 284 * kMB * cfg.width_ratio;
    m.measured_efficiency = {0.816, 0.95, 0.0042, 0.471};
    splitComm(m);

    GraphBuilder b;
    b.dataLoad(m.features.input_bytes);
    const double act =
        12 * kMB * batch_ratio * cfg.width_ratio; // b x seq x hidden
    b.memory(OpType::EmbeddingLookup, "wordpiece_embedding", 2.0 * act,
             act);
    b.memory(OpType::Normalization, "embedding_layernorm", 3.0 * act,
             act);
    emitTransformerLayers(b, "encoder", cfg.layers, act,
                          70 * kGFLOPs * w2);
    b.compute(OpType::MatMul, "mlm_head", 150 * kGFLOPs * w2,
              4.0 * act);
    b.memory(OpType::Reduction, "mlm_softmax_xent", 8.0 * act, 4 * kKB);
    b.mirrorBackward();

    m.graph = b.take();
    m.graph.scaleToTargets(m.features.flop_count,
                           m.features.mem_access_bytes,
                           m.features.input_bytes);
    return m;
}

CaseStudyModel
ModelZoo::speech()
{
    CaseStudyModel m;
    m.name = "Speech";
    m.domain = "Speech recognition";
    m.arch = ArchType::OneWorkerOneGpu;
    m.num_cnodes = 1;
    m.features.batch_size = 32;
    m.features.flop_count = 7.9 * kTFLOPs;
    m.features.mem_access_bytes = 20.4 * kGB;
    m.features.input_bytes = 804 * kMB;
    m.features.comm_bytes = 728 * kMB; // within-device weight movement
    m.features.dense_weight_bytes = 416 * kMB;
    m.features.embedding_weight_bytes = 0.0;
    m.measured_efficiency = {0.6086, 0.031, 0.7773, 0.405};
    splitComm(m);

    GraphBuilder b;
    b.dataLoad(m.features.input_bytes);
    const double act = 8 * kMB;
    b.compute(OpType::Conv, "frontend/conv1", 300 * kGFLOPs, 2.0 * act);
    b.elementWise("frontend/relu1", act);
    b.compute(OpType::Conv, "frontend/conv2", 300 * kGFLOPs, 2.0 * act);
    b.elementWise("frontend/relu2", act);
    // CNN + LSTM with layer normalization (Sec IV-A): per (layer, t)
    // one packed gate GEMM plus a chain of fine-grained element-wise
    // kernels -- exactly the op mix XLA fusion targets in Fig 13(b).
    const int lstm_layers = 5, timesteps = 25;
    for (int l = 0; l < lstm_layers; ++l) {
        for (int t = 0; t < timesteps; ++t) {
            std::string p = "lstm" + std::to_string(l) + "/t" +
                            std::to_string(t) + "/";
            b.compute(OpType::MatMul, p + "gates_gemm", 50 * kGFLOPs,
                      4.0 * act);
            b.elementWise(p + "sigmoid_i", act);
            b.elementWise(p + "sigmoid_f", act);
            b.elementWise(p + "sigmoid_o", act);
            b.elementWise(p + "tanh_g", act);
            b.elementWise(p + "cell_mul_f", act);
            b.elementWise(p + "cell_mul_i", act);
            b.elementWise(p + "cell_add", act);
            b.elementWise(p + "tanh_c", act);
            b.elementWise(p + "hidden_mul_o", act);
            b.memory(OpType::Normalization, p + "layernorm", 3.0 * act,
                     act);
        }
    }
    b.compute(OpType::MatMul, "ctc_projection", 100 * kGFLOPs,
              2.0 * act);
    b.memory(OpType::Reduction, "ctc_loss", 4.0 * act, 4 * kKB);
    b.mirrorBackward();

    m.graph = b.take();
    m.graph.scaleToTargets(m.features.flop_count,
                           m.features.mem_access_bytes,
                           m.features.input_bytes);
    return m;
}

CaseStudyModel
ModelZoo::multiInterests()
{
    return multiInterests(MultiInterestsConfig{});
}

CaseStudyModel
ModelZoo::multiInterests(const MultiInterestsConfig &cfg)
{
    assert(cfg.batch_size > 0 && cfg.attention_layers > 0);
    const MultiInterestsConfig base{};
    double batch_ratio = cfg.batch_size / base.batch_size;
    double layer_ratio = static_cast<double>(cfg.attention_layers) /
                         base.attention_layers;

    CaseStudyModel m;
    m.name = "Multi-Interests";
    m.domain = "Recommender";
    m.arch = ArchType::PsWorker;
    m.num_cnodes = 32;
    m.features.batch_size = cfg.batch_size;
    // Compute demands scale with batch; the attention stack adds its
    // share per extra layer (roughly 40% of base FLOPs/memory are in
    // the attention stack at the default 2 layers).
    double attn_scale = 0.6 + 0.4 * layer_ratio;
    m.features.flop_count = 105.8 * kGFLOPs * batch_ratio * attn_scale;
    m.features.mem_access_bytes =
        100.4 * kGB * batch_ratio * attn_scale;
    m.features.input_bytes = 261 * kMB * batch_ratio;
    // Dense gradients are batch-independent; the embedding rows pulled
    // per step grow sublinearly with batch (row reuse within a batch).
    m.features.comm_bytes =
        122 * kMB * (0.3 + 0.7 * std::sqrt(batch_ratio));
    m.features.dense_weight_bytes = 1.19 * kMB;
    m.features.embedding_weight_bytes = 239.45 * kGB;
    m.measured_efficiency = {0.3271, 0.95, 0.8647, 0.6921};
    splitComm(m);

    GraphBuilder b;
    b.dataLoad(m.features.input_bytes);
    const double act = 16 * kMB * batch_ratio;
    b.memory(OpType::EmbeddingLookup, "user_embedding", 6.0 * act, act);
    b.memory(OpType::EmbeddingLookup, "item_embedding", 6.0 * act, act);
    b.memory(OpType::EmbeddingLookup, "behavior_sequence_embedding",
             12.0 * act, 2.0 * act);
    for (int l = 0; l < cfg.attention_layers; ++l) {
        std::string p = "interest_attn" + std::to_string(l) + "/";
        b.compute(OpType::MatMul, p + "scores", 10 * kGFLOPs, act);
        b.memory(OpType::Reduction, p + "softmax", 3.0 * act, act);
        b.elementWise(p + "weighted_sum_mul", act);
        b.memory(OpType::Reduction, p + "weighted_sum_reduce",
                 2.0 * act, act / 4);
        b.elementWise(p + "interest_act", act);
    }
    b.compute(OpType::MatMul, "mlp/fc1", 20 * kGFLOPs, act);
    b.elementWise("mlp/relu1", act);
    b.compute(OpType::MatMul, "mlp/fc2", 10 * kGFLOPs, act / 2);
    b.elementWise("mlp/relu2", act / 2);
    b.compute(OpType::MatMul, "mlp/fc3", 5 * kGFLOPs, act / 4);
    b.memory(OpType::Reduction, "sampled_softmax_loss", 2.0 * act,
             4 * kKB);
    b.mirrorBackward();

    m.graph = b.take();
    m.graph.scaleToTargets(m.features.flop_count,
                           m.features.mem_access_bytes,
                           m.features.input_bytes);
    return m;
}

CaseStudyModel
ModelZoo::gcn()
{
    CaseStudyModel m;
    m.name = "GCN";
    m.domain = "Recommender";
    m.arch = ArchType::Pearl;
    m.num_cnodes = 8;
    m.features.batch_size = 512;
    m.features.flop_count = 330.7 * kGFLOPs;
    m.features.mem_access_bytes = 25.79 * kGB;
    m.features.input_bytes = 1.2 * kMB;
    m.features.comm_bytes = 3.0 * kGB;
    m.features.dense_weight_bytes = 207 * kMB;
    m.features.embedding_weight_bytes = 54 * kGB;
    m.measured_efficiency = {0.882, 0.699, 0.862, 0.2735};
    splitComm(m);

    GraphBuilder b;
    b.dataLoad(m.features.input_bytes);
    const double act = 10 * kMB;
    b.memory(OpType::EmbeddingLookup, "node_embedding", 8.0 * act, act);
    for (int hop = 0; hop < 2; ++hop) {
        std::string p = "hop" + std::to_string(hop) + "/";
        b.memory(OpType::EmbeddingLookup, p + "neighbor_gather",
                 16.0 * act, 4.0 * act);
        b.memory(OpType::Reduction, p + "neighbor_aggregate", 8.0 * act,
                 act);
        b.compute(OpType::MatMul, p + "graphconv_gemm", 60 * kGFLOPs,
                  2.0 * act);
        b.elementWise(p + "graphconv_act", act);
        b.memory(OpType::Normalization, p + "l2_normalize", 3.0 * act,
                 act);
    }
    b.compute(OpType::MatMul, "score/pairwise_dot", 30 * kGFLOPs, act);
    b.memory(OpType::Reduction, "margin_loss", 2.0 * act, 4 * kKB);
    b.mirrorBackward();

    m.graph = b.take();
    m.graph.scaleToTargets(m.features.flop_count,
                           m.features.mem_access_bytes,
                           m.features.input_bytes);
    return m;
}

std::vector<CaseStudyModel>
ModelZoo::all()
{
    return {resnet50(), nmt(),           bert(),
            speech(),   multiInterests(), gcn()};
}

} // namespace paichar::workload
