/**
 * @file
 * Operation-level dataflow graphs for training steps.
 *
 * The paper's profiling layer records per-operation kernel times and
 * tensor attributes; its analysis then splits operations into
 * compute-bound (conv, matmul) and memory-bound (element-wise) classes
 * (Sec II-B). OpGraph is our equivalent substrate: the model zoo builds
 * one graph per case-study model, the simulator executes graphs kernel
 * by kernel, and the optimization passes (mixed precision, XLA fusion)
 * rewrite them.
 */

#ifndef PAICHAR_WORKLOAD_OP_GRAPH_H
#define PAICHAR_WORKLOAD_OP_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

namespace paichar::workload {

/** Operation categories, coarse enough for cost classification. */
enum class OpType
{
    MatMul,          ///< Dense GEMM (compute-bound; TensorCore-eligible)
    Conv,            ///< Convolution (compute-bound; TensorCore-eligible)
    ElementWise,     ///< Add/mul/activation/... (memory-bound; fusable)
    Normalization,   ///< Batch/layer norm (memory-bound; fusable)
    Reduction,       ///< Softmax/sum/... (memory-bound)
    EmbeddingLookup, ///< Sparse gather (memory-bound)
    DataLoad,        ///< Host->device input copy (PCIe)
    Fused,           ///< Result of XLA-style fusion (memory-bound)
};

/** Printable op-type name. */
std::string toString(OpType t);

/** True for ops whose time is modeled as FLOPs / peak_FLOPs. */
bool isComputeBound(OpType t);

/** True for ops the XLA fusion pass may merge. */
bool isFusable(OpType t);

/** Stable operation identifier within one graph. */
using OpId = int32_t;

/** One node of the dataflow graph. */
struct Op
{
    OpId id = -1;
    std::string name;
    OpType type = OpType::ElementWise;
    /** Arithmetic work (only meaningful for compute-bound ops). */
    double flops = 0.0;
    /** Device-memory traffic this op causes (reads + writes). */
    double mem_bytes = 0.0;
    /** Bytes of the op's output tensor (fusion boundary cost). */
    double output_bytes = 0.0;
    /** Producer operations. */
    std::vector<OpId> inputs;
};

/** Aggregate resource demands of a graph. */
struct GraphTotals
{
    double flops = 0.0;            ///< compute-bound FLOPs
    double mem_access_bytes = 0.0; ///< memory-bound ops' memory traffic
    double input_bytes = 0.0;      ///< DataLoad bytes (PCIe)
    int num_kernels = 0;           ///< GPU kernel launches (non-DataLoad)
};

/**
 * A DAG of operations for one training step (forward + backward +
 * update). Insertion order must be a valid topological order: an op may
 * only reference previously added ops as inputs.
 */
class OpGraph
{
  public:
    OpGraph() = default;

    /**
     * Append an operation.
     *
     * @param op Op to add; id is assigned by the graph, inputs must
     *           refer to already-added ops.
     * @return The assigned OpId.
     */
    OpId addOp(Op op);

    /** Number of operations. */
    size_t size() const { return ops_.size(); }

    /** True if the graph has no operations. */
    bool empty() const { return ops_.empty(); }

    /** Access an op by id. */
    const Op &op(OpId id) const;

    /** All ops in insertion (= topological) order. */
    const std::vector<Op> &ops() const { return ops_; }

    /** Aggregate demands, classified per Sec II-B. */
    GraphTotals totals() const;

    /**
     * Scale the graph so its aggregate demands match targets exactly:
     * compute-bound FLOPs are scaled to @p flops, memory-bound traffic
     * to @p mem_bytes, DataLoad bytes to @p input_bytes. Used to pin
     * the model-zoo graphs to the paper's Table V totals. A target of
     * zero with a zero current total is allowed; a non-zero target
     * with a zero current total aborts.
     */
    void scaleToTargets(double flops, double mem_bytes,
                        double input_bytes);

    /**
     * Consistency check: ids are dense, inputs precede consumers,
     * all costs finite and non-negative.
     */
    bool validate() const;

  private:
    std::vector<Op> ops_;
};

} // namespace paichar::workload

#endif // PAICHAR_WORKLOAD_OP_GRAPH_H
