/**
 * @file
 * The workload feature schema of Fig 4: the per-step, per-cNode
 * resource demands that the analytical model consumes.
 */

#ifndef PAICHAR_WORKLOAD_WORKLOAD_FEATURES_H
#define PAICHAR_WORKLOAD_WORKLOAD_FEATURES_H

namespace paichar::workload {

/**
 * Fundamental resource demands of one training step on one computation
 * node (cNode = one GPU holding one model replica).
 *
 * These are *demands*, not times: the analytical model divides them by
 * (derated) hardware capacities to predict time (Sec II-B), and the
 * simulator replays them against simulated devices.
 */
struct WorkloadFeatures
{
    /** Mini-batch size per replica (Eq 2's batch_size). */
    double batch_size = 1.0;

    /** FLOPs of compute-bound ops (conv, matmul) per step. */
    double flop_count = 0.0;

    /** Bytes of device-memory access by memory-bound ops per step. */
    double mem_access_bytes = 0.0;

    /** Input sample bytes copied host->GPU over PCIe per step (Sd). */
    double input_bytes = 0.0;

    /**
     * Weight/gradient bytes exchanged per step per cNode (Sw; Table V's
     * "Network Traffic"). Includes both pull/broadcast and
     * push/reduce directions.
     */
    double comm_bytes = 0.0;

    /**
     * Of comm_bytes, the portion that is embedding (sparse) traffic.
     * PEARL partitions this across the job's GPUs (AllGatherv /
     * ReduceScatter), so each GPU only moves its 1/n share
     * (Sec IV-C); dense traffic is replicated. Invariant:
     * 0 <= embedding_comm_bytes <= comm_bytes.
     */
    double embedding_comm_bytes = 0.0;

    /** Replicated (dense) part of the per-step traffic. */
    double
    denseCommBytes() const
    {
        return comm_bytes - embedding_comm_bytes;
    }

    /** Dense trainable + optimizer-state bytes (Table IV). */
    double dense_weight_bytes = 0.0;

    /** Embedding (sparse) weight bytes (Table IV). */
    double embedding_weight_bytes = 0.0;

    /** Total model size: dense + embedding weights. */
    double
    weightBytes() const
    {
        return dense_weight_bytes + embedding_weight_bytes;
    }

    /** True when all demand fields are finite and non-negative. */
    bool valid() const;
};

} // namespace paichar::workload

#endif // PAICHAR_WORKLOAD_WORKLOAD_FEATURES_H
