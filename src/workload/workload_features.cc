#include "workload_features.h"

#include <cmath>

namespace paichar::workload {

bool
WorkloadFeatures::valid() const
{
    auto ok = [](double v) { return std::isfinite(v) && v >= 0.0; };
    return ok(batch_size) && batch_size > 0.0 && ok(flop_count) &&
           ok(mem_access_bytes) && ok(input_bytes) && ok(comm_bytes) &&
           ok(dense_weight_bytes) && ok(embedding_weight_bytes) &&
           ok(embedding_comm_bytes) &&
           embedding_comm_bytes <= comm_bytes * (1.0 + 1e-12);
}

} // namespace paichar::workload
