#include "op_graph.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace paichar::workload {

std::string
toString(OpType t)
{
    switch (t) {
      case OpType::MatMul:
        return "MatMul";
      case OpType::Conv:
        return "Conv";
      case OpType::ElementWise:
        return "ElementWise";
      case OpType::Normalization:
        return "Normalization";
      case OpType::Reduction:
        return "Reduction";
      case OpType::EmbeddingLookup:
        return "EmbeddingLookup";
      case OpType::DataLoad:
        return "DataLoad";
      case OpType::Fused:
        return "Fused";
    }
    return "unknown";
}

bool
isComputeBound(OpType t)
{
    return t == OpType::MatMul || t == OpType::Conv;
}

bool
isFusable(OpType t)
{
    return t == OpType::ElementWise || t == OpType::Normalization ||
           t == OpType::Reduction;
}

OpId
OpGraph::addOp(Op op)
{
    for (OpId in : op.inputs) {
        assert(in >= 0 && static_cast<size_t>(in) < ops_.size() &&
               "op inputs must already be in the graph");
        (void)in;
    }
    assert(std::isfinite(op.flops) && op.flops >= 0.0);
    assert(std::isfinite(op.mem_bytes) && op.mem_bytes >= 0.0);
    assert(std::isfinite(op.output_bytes) && op.output_bytes >= 0.0);
    op.id = static_cast<OpId>(ops_.size());
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

const Op &
OpGraph::op(OpId id) const
{
    assert(id >= 0 && static_cast<size_t>(id) < ops_.size());
    return ops_[static_cast<size_t>(id)];
}

GraphTotals
OpGraph::totals() const
{
    GraphTotals t;
    for (const Op &op : ops_) {
        if (op.type == OpType::DataLoad) {
            t.input_bytes += op.mem_bytes;
            continue;
        }
        ++t.num_kernels;
        if (isComputeBound(op.type))
            t.flops += op.flops;
        else
            t.mem_access_bytes += op.mem_bytes;
    }
    return t;
}

void
OpGraph::scaleToTargets(double flops, double mem_bytes, double input_bytes)
{
    assert(flops >= 0.0 && mem_bytes >= 0.0 && input_bytes >= 0.0);
    GraphTotals cur = totals();
    auto ratio = [](double target, double current) {
        if (target == 0.0 && current == 0.0)
            return 1.0;
        assert(current > 0.0 &&
               "cannot scale a zero total to a non-zero target");
        return target / current;
    };
    double rf = ratio(flops, cur.flops);
    double rm = ratio(mem_bytes, cur.mem_access_bytes);
    double rd = ratio(input_bytes, cur.input_bytes);

    for (Op &op : ops_) {
        if (op.type == OpType::DataLoad) {
            op.mem_bytes *= rd;
            op.output_bytes *= rd;
        } else if (isComputeBound(op.type)) {
            op.flops *= rf;
            // Compute-bound ops also touch memory; keep their tensor
            // sizes in step with the work they do.
            op.mem_bytes *= rf;
            op.output_bytes *= rf;
        } else {
            op.mem_bytes *= rm;
            op.output_bytes *= rm;
        }
    }
}

bool
OpGraph::validate() const
{
    for (size_t i = 0; i < ops_.size(); ++i) {
        const Op &op = ops_[i];
        if (op.id != static_cast<OpId>(i))
            return false;
        for (OpId in : op.inputs) {
            if (in < 0 || static_cast<size_t>(in) >= i)
                return false;
        }
        if (!(std::isfinite(op.flops) && op.flops >= 0.0))
            return false;
        if (!(std::isfinite(op.mem_bytes) && op.mem_bytes >= 0.0))
            return false;
        if (!(std::isfinite(op.output_bytes) && op.output_bytes >= 0.0))
            return false;
    }
    return true;
}

} // namespace paichar::workload
