/**
 * @file
 * A training job as seen by the cluster-level analyses: the job meta
 * information (architecture, resource allocation) plus the extracted
 * workload features (Fig 4's "run metadata + job meta" pairing).
 */

#ifndef PAICHAR_WORKLOAD_TRAINING_JOB_H
#define PAICHAR_WORKLOAD_TRAINING_JOB_H

#include <cstdint>

#include "workload/arch_type.h"
#include "workload/workload_features.h"

namespace paichar::workload {

/** One production training job record. */
struct TrainingJob
{
    /** Stable identifier within a trace. */
    int64_t id = 0;

    /** System architecture the job runs under. */
    ArchType arch = ArchType::OneWorkerOneGpu;

    /**
     * Computation nodes: GPU devices each holding one model replica.
     * 1 for 1w1g; <= 8 for 1wng and AllReduce-Local.
     */
    int num_cnodes = 1;

    /** Parameter-server nodes (PS/Worker jobs only; 0 otherwise). */
    int num_ps = 0;

    /** Per-step per-cNode resource demands. */
    WorkloadFeatures features;
};

} // namespace paichar::workload

#endif // PAICHAR_WORKLOAD_TRAINING_JOB_H
