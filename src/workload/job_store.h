/**
 * @file
 * A structure-of-arrays view over a training-job population.
 *
 * Two storage modes behind one interface:
 *
 *   - Owned: wraps a materialized std::vector<TrainingJob> (the CSV
 *     and synthetic-generation paths).
 *   - Columnar view: borrows column base pointers straight out of a
 *     `paib` payload (typically an mmap'd file), assembling each
 *     TrainingJob on access. A 100M-job trace then costs no per-job
 *     heap state at all — the analyses stream the file's own pages.
 *
 * Column pointers follow the `paib` schema order (binary_trace.h);
 * kFeatureColumnOrder below is the single source of truth shared by
 * the serializer, the validator and this view. Columns are NOT
 * assumed aligned: `paib` packs columns back to back, so any column
 * after the uint8 arch array is misaligned whenever the job count is
 * not a multiple of 8 — every element load goes through memcpy.
 */

#ifndef PAICHAR_WORKLOAD_JOB_STORE_H
#define PAICHAR_WORKLOAD_JOB_STORE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <vector>

#include "workload/training_job.h"

namespace paichar::workload {

/** WorkloadFeatures members in `paib` column (schema) order. */
inline constexpr double WorkloadFeatures::*kFeatureColumnOrder[] = {
    &WorkloadFeatures::batch_size,
    &WorkloadFeatures::flop_count,
    &WorkloadFeatures::mem_access_bytes,
    &WorkloadFeatures::input_bytes,
    &WorkloadFeatures::comm_bytes,
    &WorkloadFeatures::embedding_comm_bytes,
    &WorkloadFeatures::dense_weight_bytes,
    &WorkloadFeatures::embedding_weight_bytes,
};

inline constexpr size_t kNumFeatureColumns =
    std::size(kFeatureColumnOrder);

/**
 * Column base pointers of a borrowed columnar job table (schema
 * order; see file comment for alignment caveats).
 */
struct JobColumns
{
    const char *ids = nullptr;    ///< int64[n]
    const char *archs = nullptr;  ///< uint8[n]
    const char *cnodes = nullptr; ///< int32[n]
    const char *ps = nullptr;     ///< int32[n]
    const char *features[kNumFeatureColumns] = {}; ///< double[n] each
};

/** A job population, owned or borrowed (see file comment). */
class JobStore
{
  public:
    /** An empty store. */
    JobStore() = default;

    /** Owned mode: wrap a materialized population. */
    explicit JobStore(std::vector<TrainingJob> jobs)
        : owned_(std::move(jobs)), size_(owned_.size())
    {
    }

    /**
     * Columnar view mode: @p cols points into memory kept alive by
     * @p backing (e.g. a mapped file). The caller has already
     * validated the table (see trace::readTraceStore).
     */
    static JobStore fromColumns(size_t n, const JobColumns &cols,
                                std::shared_ptr<const void> backing)
    {
        JobStore s;
        s.size_ = n;
        s.cols_ = cols;
        s.backing_ = std::move(backing);
        s.columnar_ = true;
        return s;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** True when backed by borrowed columns rather than a vector. */
    bool columnar() const { return columnar_; }

    /** Job @p i, assembled from the columns in view mode. */
    TrainingJob job(size_t i) const
    {
        if (!columnar_)
            return owned_[i];
        TrainingJob j;
        j.id = readRaw<int64_t>(cols_.ids + i * sizeof(int64_t));
        j.arch = static_cast<ArchType>(
            readRaw<uint8_t>(cols_.archs + i));
        j.num_cnodes =
            readRaw<int32_t>(cols_.cnodes + i * sizeof(int32_t));
        j.num_ps = readRaw<int32_t>(cols_.ps + i * sizeof(int32_t));
        for (size_t k = 0; k < kNumFeatureColumns; ++k) {
            j.features.*kFeatureColumnOrder[k] = readRaw<double>(
                cols_.features[k] + i * sizeof(double));
        }
        return j;
    }

    /**
     * The population as a vector. Free in owned mode; in view mode
     * every job is materialized (use only where downstream code
     * genuinely needs the vector, e.g. request generation).
     */
    std::vector<TrainingJob> materialize() const
    {
        if (!columnar_)
            return owned_;
        std::vector<TrainingJob> jobs;
        jobs.reserve(size_);
        for (size_t i = 0; i < size_; ++i)
            jobs.push_back(job(i));
        return jobs;
    }

    /** Forward iterator yielding jobs by value. */
    class const_iterator
    {
      public:
        using value_type = TrainingJob;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::input_iterator_tag;

        const_iterator(const JobStore *store, size_t i)
            : store_(store), i_(i)
        {
        }
        TrainingJob operator*() const { return store_->job(i_); }
        const_iterator &operator++()
        {
            ++i_;
            return *this;
        }
        bool operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }
        bool operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }

      private:
        const JobStore *store_;
        size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    template <typename T>
    static T
    readRaw(const char *p)
    {
        T v;
        std::memcpy(&v, p, sizeof v);
        return v;
    }

    std::vector<TrainingJob> owned_;
    size_t size_ = 0;
    JobColumns cols_;
    /** Keeps the borrowed columns' memory alive in view mode. */
    std::shared_ptr<const void> backing_;
    bool columnar_ = false;
};

} // namespace paichar::workload

#endif // PAICHAR_WORKLOAD_JOB_STORE_H
