/**
 * @file
 * The five production training architectures of Table II plus PEARL
 * (Sec IV-C), and the mapping from each architecture to the hardware
 * medium that carries its weight/gradient traffic.
 */

#ifndef PAICHAR_WORKLOAD_ARCH_TYPE_H
#define PAICHAR_WORKLOAD_ARCH_TYPE_H

#include <optional>
#include <string>
#include <string_view>

namespace paichar::workload {

/** System architecture a training job runs under (Table II). */
enum class ArchType
{
    /** Single worker, single GPU; no weight movement. */
    OneWorkerOneGpu,
    /** Centralized, single server, params on CPU, replicas on GPUs. */
    OneWorkerMultiGpu,
    /** Parameter servers + workers, each on its own server. */
    PsWorker,
    /** Decentralized AllReduce inside one NVLink server. */
    AllReduceLocal,
    /** Decentralized AllReduce across servers. */
    AllReduceCluster,
    /** Partitioned Embedding And RepLicated (Sec IV-C). */
    Pearl,
};

/** All architecture values, in Table II order (PEARL last). */
inline constexpr ArchType kAllArchTypes[] = {
    ArchType::OneWorkerOneGpu,  ArchType::OneWorkerMultiGpu,
    ArchType::PsWorker,         ArchType::AllReduceLocal,
    ArchType::AllReduceCluster, ArchType::Pearl,
};

/** Paper-style short name: "1w1g", "1wng", "PS/Worker", ... */
std::string toString(ArchType a);

/**
 * Inverse of toString; nullopt for unknown names. Allocation-free so
 * hot parsers (trace I/O) can call it once per record.
 */
std::optional<ArchType> archFromString(std::string_view name);

/** True for PS/Worker and 1wng ("(parameter) centralized"). */
bool isCentralized(ArchType a);

/** True if the job spans multiple servers (Table II "Cluster"). */
bool isCluster(ArchType a);

/**
 * Human-readable weight-movement medium for Table II, e.g.
 * "Ethernet & PCIe" for PS/Worker, "-" for 1w1g.
 */
std::string weightMovementMedium(ArchType a);

} // namespace paichar::workload

#endif // PAICHAR_WORKLOAD_ARCH_TYPE_H
