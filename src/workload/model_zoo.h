/**
 * @file
 * The six case-study models of Sec IV (Tables IV, V, VI):
 * ResNet50, NMT, BERT, Speech, Multi-Interests, GCN.
 *
 * Each model carries:
 *  - the Table IV scale data (dense/embedding weights, architecture),
 *  - the Table V per-step demands (batch, FLOPs, memory access, PCIe
 *    memcpy, network traffic),
 *  - the Table VI measured hardware efficiencies (consumed by the
 *    simulator as the "real hardware" behaviour),
 *  - a layer-structured OpGraph whose totals are pinned to Table V.
 *
 * The graphs are structurally faithful (ResNet50 is conv+BN+ReLU
 * residual blocks; Speech is a CNN front-end plus LSTM steps with layer
 * norm; ...) so the optimization passes act on realistic op mixes, and
 * then scaled so aggregate demands match the published numbers exactly.
 */

#ifndef PAICHAR_WORKLOAD_MODEL_ZOO_H
#define PAICHAR_WORKLOAD_MODEL_ZOO_H

#include <string>
#include <vector>

#include "workload/arch_type.h"
#include "workload/op_graph.h"
#include "workload/workload_features.h"

namespace paichar::workload {

/**
 * Achieved hardware-utilization efficiencies (Table VI). The analytical
 * model assumes 70% everywhere; these are what the testbed actually
 * achieved, and our simulator adopts them as ground truth.
 */
struct EfficiencyProfile
{
    double gpu_flops = 0.7;  ///< "GPU TOPS" column
    double gpu_memory = 0.7; ///< "GDDR" column
    double pcie = 0.7;       ///< "PCIe" column
    double network = 0.7;    ///< "Network (Ethernet/NVLink)" column
};

/** A fully described case-study training workload. */
struct CaseStudyModel
{
    std::string name;
    std::string domain;
    /** Training architecture used on the testbed (Table IV). */
    ArchType arch = ArchType::AllReduceLocal;
    /** cNodes used when run distributed on the testbed. */
    int num_cnodes = 8;
    /**
     * Per-step per-cNode demands (Table V); the dense/embedding comm
     * split lives in features.embedding_comm_bytes.
     */
    WorkloadFeatures features;
    /** Measured efficiencies (Table VI). */
    EfficiencyProfile measured_efficiency;
    /** Step dataflow graph, totals pinned to Table V. */
    OpGraph graph;
};

/** Configuration knobs for the Multi-Interests model (Fig 13c). */
struct MultiInterestsConfig
{
    double batch_size = 2048;
    int attention_layers = 2;
};

/**
 * Configuration for the residual-CNN family. The default reproduces
 * the Table IV/V ResNet50; other depths scale structure (blocks) and
 * demands proportionally, for model-scaling what-ifs.
 */
struct ResNetConfig
{
    /** One of the standard depths: 18, 34, 50, 101, 152. */
    int depth = 50;
    double batch_size = 64;
};

/**
 * Configuration for the transformer-encoder family. The default
 * reproduces the Table IV/V BERT (24 layers); other sizes scale
 * per-layer demands and weights.
 */
struct TransformerConfig
{
    int layers = 24;
    /** Hidden width relative to the BERT-large baseline. */
    double width_ratio = 1.0;
    double batch_size = 12;
};

/** Builders for the six case-study models. */
class ModelZoo
{
  public:
    static CaseStudyModel resnet50();
    /** Parameterized residual CNN (depth sweep). */
    static CaseStudyModel resnet(const ResNetConfig &cfg);
    static CaseStudyModel nmt();
    static CaseStudyModel bert();
    /** Parameterized transformer encoder (layer/width sweep). */
    static CaseStudyModel transformer(const TransformerConfig &cfg);
    static CaseStudyModel speech();
    /** Default Table V configuration (batch 2048). */
    static CaseStudyModel multiInterests();
    /** Parameterized variant for the Fig 13c configuration sweep. */
    static CaseStudyModel multiInterests(const MultiInterestsConfig &cfg);
    static CaseStudyModel gcn();

    /** All six models in Table IV order. */
    static std::vector<CaseStudyModel> all();
};

} // namespace paichar::workload

#endif // PAICHAR_WORKLOAD_MODEL_ZOO_H
