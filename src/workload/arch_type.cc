#include "arch_type.h"

#include <iterator>

namespace paichar::workload {

std::string
toString(ArchType a)
{
    switch (a) {
      case ArchType::OneWorkerOneGpu:
        return "1w1g";
      case ArchType::OneWorkerMultiGpu:
        return "1wng";
      case ArchType::PsWorker:
        return "PS/Worker";
      case ArchType::AllReduceLocal:
        return "AllReduce-Local";
      case ArchType::AllReduceCluster:
        return "AllReduce-Cluster";
      case ArchType::Pearl:
        return "PEARL";
    }
    return "unknown";
}

std::optional<ArchType>
archFromString(std::string_view name)
{
    // Names are fixed string literals; comparing string_views keeps
    // this allocation-free on the trace-parsing hot path.
    constexpr std::string_view kNames[] = {
        "1w1g", "1wng", "PS/Worker", "AllReduce-Local",
        "AllReduce-Cluster", "PEARL",
    };
    static_assert(std::size(kNames) == std::size(kAllArchTypes));
    for (size_t i = 0; i < std::size(kNames); ++i) {
        if (kNames[i] == name)
            return kAllArchTypes[i];
    }
    return std::nullopt;
}

bool
isCentralized(ArchType a)
{
    return a == ArchType::OneWorkerMultiGpu || a == ArchType::PsWorker;
}

bool
isCluster(ArchType a)
{
    return a == ArchType::PsWorker || a == ArchType::AllReduceCluster;
}

std::string
weightMovementMedium(ArchType a)
{
    switch (a) {
      case ArchType::OneWorkerOneGpu:
        return "-";
      case ArchType::OneWorkerMultiGpu:
        return "PCIe";
      case ArchType::PsWorker:
        return "Ethernet & PCIe";
      case ArchType::AllReduceLocal:
        return "NVLink";
      case ArchType::AllReduceCluster:
        return "Ethernet & NVLink";
      case ArchType::Pearl:
        return "NVLink";
    }
    return "unknown";
}

} // namespace paichar::workload
