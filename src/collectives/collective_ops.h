/**
 * @file
 * Event-driven collective-communication primitives over the simulated
 * NVLink fabric and Ethernet NICs: ring AllReduce / AllGather /
 * ReduceScatter / Broadcast (the NCCL primitives of Sec II-A2), a
 * sparse all-to-all exchange used by PEARL's partitioned embeddings,
 * and a cross-server NIC ring.
 *
 * Cost structure: a ring step moves chunk = bytes/n per GPU per phase
 * on one NVLink link; AllReduce runs 2(n-1) phases (reduce-scatter +
 * all-gather), so per-GPU traffic is the textbook 2(n-1)/n * bytes.
 * The sparse exchange moves total/n per GPU, spread across all of the
 * GPU's NVLink links in parallel (each accessed embedding row travels
 * once, owner -> requester, across the hybrid mesh of Fig 1b).
 */

#ifndef PAICHAR_COLLECTIVES_COLLECTIVE_OPS_H
#define PAICHAR_COLLECTIVES_COLLECTIVE_OPS_H

#include <functional>
#include <vector>

#include "sim/topology.h"

namespace paichar::collectives {

/** Completion callback with the collective's finish time. */
using Done = std::function<void(sim::SimTime end)>;

/** Closed-form expected durations (used by tests and quick models). */
struct RingCost
{
    /** Per-GPU ring-AllReduce time for n GPUs at link rate bytes/s. */
    static double allReduce(int n, double bytes, double link_rate,
                            double phase_latency);
    /** Per-GPU ring All-Gather (or ReduceScatter) of `bytes` total. */
    static double allGather(int n, double bytes, double link_rate,
                            double phase_latency);
    /** Sparse all-to-all of `bytes` total over `links` parallel links. */
    static double sparseExchange(int n, double bytes, double link_rate,
                                 int links, double phase_latency);
};

/** Issues collectives onto a simulated cluster. */
class CollectiveOps
{
  public:
    /**
     * @param eq            Event queue of the target cluster.
     * @param phase_latency Fixed software+wire latency per ring phase.
     */
    explicit CollectiveOps(sim::EventQueue &eq,
                           double phase_latency = 5e-6);

    /**
     * Ring AllReduce of @p bytes (the full gradient buffer size) over
     * the group's NVLink link 0. Group size 1 completes immediately.
     * All GPUs must have NVLink.
     */
    void ringAllReduce(const std::vector<sim::Gpu *> &group,
                       double bytes, Done done);

    /** Ring All-Gather: after completion every GPU holds all
     * @p total_bytes (each starts with total_bytes / n). */
    void ringAllGather(const std::vector<sim::Gpu *> &group,
                       double total_bytes, Done done);

    /** Ring Reduce-Scatter: dual of ringAllGather. */
    void ringReduceScatter(const std::vector<sim::Gpu *> &group,
                           double total_bytes, Done done);

    /** Pipelined ring broadcast of @p bytes from one GPU to all. */
    void broadcast(const std::vector<sim::Gpu *> &group, double bytes,
                   Done done);

    /**
     * Sparse embedding exchange (PEARL, Sec IV-C): @p total_bytes of
     * accessed rows/gradients move owner -> requester; each GPU
     * egresses total/n, spread across all its NVLink links.
     */
    void sparseAllToAll(const std::vector<sim::Gpu *> &group,
                        double total_bytes, Done done);

    /**
     * Cross-server ring AllReduce over Ethernet NICs; @p bytes is the
     * full buffer, each NIC carries 2(s-1)/s * bytes.
     */
    void nicRingAllReduce(const std::vector<sim::Server *> &servers,
                          double bytes, Done done);

  private:
    /**
     * Run @p phases rounds; each round submits @p per_phase_bytes to
     * every resource in @p links and waits for all to finish.
     */
    void runPhases(std::vector<sim::Resource *> links,
                   double per_phase_bytes, int phases, Done done);

    /** NVLink link 0 of each GPU in the group (asserts presence). */
    static std::vector<sim::Resource *>
    primaryLinks(const std::vector<sim::Gpu *> &group);

    sim::EventQueue &eq_;
    double phase_latency_;
};

} // namespace paichar::collectives

#endif // PAICHAR_COLLECTIVES_COLLECTIVE_OPS_H
