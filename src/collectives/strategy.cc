#include "strategy.h"

#include <cassert>
#include <memory>

namespace paichar::collectives {

using workload::ArchType;
using workload::WorkloadFeatures;

namespace {

/** Invoke @p done once @p count completions have arrived. */
class Barrier
{
  public:
    Barrier(size_t count, Done done)
        : remaining_(count), done_(std::move(done))
    {
        assert(count > 0);
    }

    void
    arrive(sim::SimTime t)
    {
        latest_ = std::max(latest_, t);
        if (--remaining_ == 0)
            done_(latest_);
    }

  private:
    size_t remaining_;
    sim::SimTime latest_ = 0.0;
    Done done_;
};

/** 1w1g: no weight movement. */
class NoSyncStrategy final : public SyncStrategy
{
  public:
    std::string name() const override { return "no-sync (1w1g)"; }

    void
    sync(sim::ClusterSim &cluster, const std::vector<sim::Gpu *> &,
         const WorkloadFeatures &, Done done) override
    {
        auto &eq = cluster.eventQueue();
        eq.scheduleAfter(0.0, [done, &eq] { done(eq.now()); });
    }

    SyncTraffic
    traffic(const WorkloadFeatures &, int) const override
    {
        return {};
    }
};

/**
 * 1wng: parameters live in host memory; every replica pulls weights
 * and pushes gradients across its host-PCIe link (Table II).
 */
class LocalPsStrategy final : public SyncStrategy
{
  public:
    std::string name() const override { return "host-params (1wng)"; }

    void
    sync(sim::ClusterSim &, const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &f, Done done) override
    {
        auto barrier =
            std::make_shared<Barrier>(group.size(), std::move(done));
        for (sim::Gpu *gpu : group) {
            gpu->hostLink().submit(
                f.comm_bytes, [barrier](sim::SimTime, sim::SimTime end) {
                    barrier->arrive(end);
                });
        }
    }

    SyncTraffic
    traffic(const WorkloadFeatures &f, int) const override
    {
        return {.pcie_bytes = f.comm_bytes};
    }
};

/**
 * PS/Worker: each worker's traffic crosses its server NIC and then
 * the host-GPU PCIe link, serially (Table II / Eq 3). Workers are
 * assumed to be placed one per server.
 */
class PsWorkerStrategy final : public SyncStrategy
{
  public:
    explicit PsWorkerStrategy(const StrategyOptions &opts)
        : opts_(opts)
    {
    }

    std::string name() const override { return "PS/Worker"; }

    void
    sync(sim::ClusterSim &cluster,
         const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &f, Done done) override
    {
        bool contended = opts_.model_ps_contention && opts_.num_ps > 0;
        if (contended) {
            // The PS tier occupies the servers following the workers.
            assert(static_cast<size_t>(group.size()) + opts_.num_ps <=
                   cluster.servers().size());
        }
        auto barrier =
            std::make_shared<Barrier>(group.size(), std::move(done));
        int worker_idx = 0;
        for (sim::Gpu *gpu : group) {
            sim::Resource &nic =
                cluster.servers()[static_cast<size_t>(
                                      gpu->serverId())]
                    ->nic();
            double bytes = f.comm_bytes;
            auto to_pcie = [gpu, bytes, barrier](sim::SimTime,
                                                 sim::SimTime) {
                gpu->hostLink().submit(
                    bytes,
                    [barrier](sim::SimTime, sim::SimTime end) {
                        barrier->arrive(end);
                    });
            };
            if (contended) {
                // Variables are sharded: this worker's volume also
                // crosses its assigned PS server's NIC (aggregated
                // round-robin sharding).
                size_t ps_idx = group.size() +
                                static_cast<size_t>(worker_idx %
                                                    opts_.num_ps);
                sim::Resource &ps_nic =
                    cluster.servers()[ps_idx]->nic();
                ps_nic.submit(bytes,
                              [&nic, bytes, to_pcie](sim::SimTime,
                                                     sim::SimTime) {
                                  nic.submit(bytes, to_pcie);
                              });
            } else {
                nic.submit(bytes, to_pcie);
            }
            ++worker_idx;
        }
    }

    SyncTraffic
    traffic(const WorkloadFeatures &f, int) const override
    {
        return {.pcie_bytes = f.comm_bytes,
                .ethernet_bytes = f.comm_bytes};
    }

  private:
    StrategyOptions opts_;
};

/** AllReduce-Local: one NVLink ring inside a server. */
class LocalAllReduceStrategy final : public SyncStrategy
{
  public:
    std::string name() const override { return "AllReduce-Local"; }

    void
    sync(sim::ClusterSim &cluster,
         const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &f, Done done) override
    {
        CollectiveOps ops(cluster.eventQueue());
        ops.ringAllReduce(group, f.comm_bytes, std::move(done));
    }

    SyncTraffic
    traffic(const WorkloadFeatures &f, int group_size) const override
    {
        double n = std::max(1, group_size);
        return {.nvlink_bytes =
                    group_size > 1
                        ? 2.0 * (n - 1.0) / n * f.comm_bytes
                        : 0.0};
    }
};

/**
 * AllReduce-Cluster: hierarchical -- an NVLink ring within each
 * server, then an Ethernet ring across the involved servers.
 */
class ClusterAllReduceStrategy final : public SyncStrategy
{
  public:
    std::string name() const override { return "AllReduce-Cluster"; }

    void
    sync(sim::ClusterSim &cluster,
         const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &f, Done done) override
    {
        // Partition the group by server.
        std::vector<std::vector<sim::Gpu *>> by_server(
            cluster.servers().size());
        std::vector<sim::Server *> servers;
        for (sim::Gpu *gpu : group) {
            auto sid = static_cast<size_t>(gpu->serverId());
            if (by_server[sid].empty())
                servers.push_back(cluster.servers()[sid].get());
            by_server[sid].push_back(gpu);
        }

        auto ops =
            std::make_shared<CollectiveOps>(cluster.eventQueue());
        auto local_barrier = std::make_shared<Barrier>(
            servers.size(),
            [ops, servers, bytes = f.comm_bytes,
             done = std::move(done)](sim::SimTime) {
                ops->nicRingAllReduce(servers, bytes, done);
            });
        for (sim::Server *srv : servers) {
            auto &local = by_server[static_cast<size_t>(srv->id())];
            ops->ringAllReduce(local, f.comm_bytes,
                               [local_barrier](sim::SimTime t) {
                                   local_barrier->arrive(t);
                               });
        }
    }

    SyncTraffic
    traffic(const WorkloadFeatures &f, int group_size) const override
    {
        double n = std::max(1, group_size);
        (void)n;
        // Approximation: the full buffer crosses NVLink locally and
        // Ethernet across servers (the paper's serial-legs model).
        return {.ethernet_bytes = f.comm_bytes,
                .nvlink_bytes = f.comm_bytes};
    }
};

/**
 * PEARL (Sec IV-C): replicated dense weights go through a ring
 * AllReduce; partitioned embeddings are exchanged sparsely
 * (AllGatherv forward + ReduceScatter backward, realized as an
 * owner-to-requester exchange across all NVLink mesh links).
 */
class PearlStrategy final : public SyncStrategy
{
  public:
    std::string name() const override { return "PEARL"; }

    void
    sync(sim::ClusterSim &cluster,
         const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &f, Done done) override
    {
        auto ops =
            std::make_shared<CollectiveOps>(cluster.eventQueue());
        int n = static_cast<int>(group.size());
        double sparse_total = f.embedding_comm_bytes * n;
        ops->ringAllReduce(
            group, f.denseCommBytes(),
            [ops, group, sparse_total,
             done = std::move(done)](sim::SimTime) {
                ops->sparseAllToAll(group, sparse_total, done);
            });
    }

    SyncTraffic
    traffic(const WorkloadFeatures &f, int group_size) const override
    {
        double n = std::max(1, group_size);
        double dense = group_size > 1
                           ? 2.0 * (n - 1.0) / n * f.denseCommBytes()
                           : 0.0;
        // Sparse exchange: each GPU moves its owned share, which is
        // the per-cNode accessed volume.
        double sparse = group_size > 1 ? f.embedding_comm_bytes : 0.0;
        return {.nvlink_bytes = dense + sparse};
    }
};

/** See makeShardedStrategy(). */
class ShardedSyncStrategy final : public SyncStrategy
{
  public:
    ShardedSyncStrategy(std::unique_ptr<SyncStrategy> inner, int ways)
        : inner_(std::move(inner)), ways_(ways)
    {
        assert(inner_);
        assert(ways_ >= 1);
    }

    std::string
    name() const override
    {
        return "sharded/" + std::to_string(ways_) + "(" +
               inner_->name() + ")";
    }

    void
    sync(sim::ClusterSim &cluster,
         const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &f, Done done) override
    {
        inner_->sync(cluster, group, scaled(f), std::move(done));
    }

    SyncTraffic
    traffic(const WorkloadFeatures &f, int group_size) const override
    {
        return inner_->traffic(scaled(f), group_size);
    }

  private:
    WorkloadFeatures
    scaled(const WorkloadFeatures &f) const
    {
        WorkloadFeatures s = f;
        s.comm_bytes /= ways_;
        s.embedding_comm_bytes /= ways_;
        return s;
    }

    std::unique_ptr<SyncStrategy> inner_;
    int ways_;
};

/** See makeActivationExchange(). */
class ActivationExchangeStrategy final : public SyncStrategy
{
  public:
    explicit ActivationExchangeStrategy(double per_gpu_bytes)
        : per_gpu_bytes_(per_gpu_bytes)
    {
        assert(per_gpu_bytes_ >= 0.0);
    }

    std::string name() const override { return "activation-exchange"; }

    void
    sync(sim::ClusterSim &cluster,
         const std::vector<sim::Gpu *> &group,
         const WorkloadFeatures &, Done done) override
    {
        if (per_gpu_bytes_ <= 0.0 || group.size() < 2) {
            auto &eq = cluster.eventQueue();
            eq.scheduleAfter(0.0, [done, &eq] { done(eq.now()); });
            return;
        }
        auto ops =
            std::make_shared<CollectiveOps>(cluster.eventQueue());
        double total =
            per_gpu_bytes_ * static_cast<double>(group.size());
        ops->sparseAllToAll(group, total,
                            [ops, done = std::move(done)](
                                sim::SimTime t) { done(t); });
    }

    SyncTraffic
    traffic(const WorkloadFeatures &, int group_size) const override
    {
        return {.nvlink_bytes =
                    group_size > 1 ? per_gpu_bytes_ : 0.0};
    }

  private:
    double per_gpu_bytes_;
};

} // namespace

std::unique_ptr<SyncStrategy>
makeStrategy(ArchType arch, const StrategyOptions &opts)
{
    switch (arch) {
      case ArchType::OneWorkerOneGpu:
        return std::make_unique<NoSyncStrategy>();
      case ArchType::OneWorkerMultiGpu:
        return std::make_unique<LocalPsStrategy>();
      case ArchType::PsWorker:
        return std::make_unique<PsWorkerStrategy>(opts);
      case ArchType::AllReduceLocal:
        return std::make_unique<LocalAllReduceStrategy>();
      case ArchType::AllReduceCluster:
        return std::make_unique<ClusterAllReduceStrategy>();
      case ArchType::Pearl:
        return std::make_unique<PearlStrategy>();
    }
    return nullptr;
}

std::unique_ptr<SyncStrategy>
makeShardedStrategy(std::unique_ptr<SyncStrategy> inner, int ways)
{
    return std::make_unique<ShardedSyncStrategy>(std::move(inner),
                                                 ways);
}

std::unique_ptr<SyncStrategy>
makeActivationExchange(double per_gpu_bytes)
{
    return std::make_unique<ActivationExchangeStrategy>(per_gpu_bytes);
}

} // namespace paichar::collectives
