/**
 * @file
 * Weight-synchronization strategies: one per system architecture of
 * Table II, plus PEARL (Sec IV-C). A strategy launches the event-driven
 * weight/gradient exchange for one training step on a simulated
 * cluster and reports completion.
 */

#ifndef PAICHAR_COLLECTIVES_STRATEGY_H
#define PAICHAR_COLLECTIVES_STRATEGY_H

#include <memory>
#include <string>
#include <vector>

#include "collectives/collective_ops.h"
#include "sim/topology.h"
#include "workload/arch_type.h"
#include "workload/workload_features.h"

namespace paichar::collectives {

/** Per-cNode traffic a strategy will move, split by medium. */
struct SyncTraffic
{
    double pcie_bytes = 0.0;
    double ethernet_bytes = 0.0;
    double nvlink_bytes = 0.0;

    double
    total() const
    {
        return pcie_bytes + ethernet_bytes + nvlink_bytes;
    }
};

/** Interface for one architecture's weight synchronization. */
class SyncStrategy
{
  public:
    virtual ~SyncStrategy() = default;

    /** Human-readable strategy name. */
    virtual std::string name() const = 0;

    /**
     * Launch the weight sync for one step.
     *
     * @param cluster Simulated cluster providing links and the queue.
     * @param group   The job's GPUs (one per cNode).
     * @param f       The job's per-step features.
     * @param done    Invoked at the sync's completion time.
     */
    virtual void sync(sim::ClusterSim &cluster,
                      const std::vector<sim::Gpu *> &group,
                      const workload::WorkloadFeatures &f,
                      Done done) = 0;

    /**
     * Per-cNode traffic this strategy moves for @p f on a group of
     * @p group_size GPUs, by medium (used for profiling records and
     * sanity checks; event execution must agree in total volume).
     */
    virtual SyncTraffic traffic(const workload::WorkloadFeatures &f,
                                int group_size) const = 0;
};

/** Optional strategy behaviors. */
struct StrategyOptions
{
    /**
     * PS/Worker only: number of parameter-server nodes. When
     * model_ps_contention is set, each worker's Ethernet leg also
     * crosses one of the PS servers' NICs (round-robin), so an
     * under-provisioned PS tier becomes a measurable bottleneck.
     * The PS servers must exist in the topology: the convention is
     * that servers [num_workers, num_workers + num_ps) host the PSs.
     */
    int num_ps = 0;
    bool model_ps_contention = false;
};

/**
 * Build the strategy matching an architecture. PS/Worker placement
 * assumptions (one worker per server) are the caller's responsibility.
 */
std::unique_ptr<SyncStrategy> makeStrategy(workload::ArchType arch,
                                           const StrategyOptions &opts =
                                               StrategyOptions{});

/**
 * Hybrid data+model parallelism decorator: with the model split
 * `ways` ways, each GPU owns 1/ways of the parameters, so the
 * wrapped architecture's weight sync moves 1/ways of the gradient
 * volume (both dense and embedding traffic scale down). The
 * underlying collective still spans the whole group -- `ways`
 * shard rings running concurrently over disjoint parameter shards
 * are modeled as one ring carrying the combined (scaled) volume.
 */
std::unique_ptr<SyncStrategy>
makeShardedStrategy(std::unique_ptr<SyncStrategy> inner, int ways);

/**
 * Per-step activation exchange of a partitioned model (sub-graph or
 * channel/filter parallelism): every GPU moves @p per_gpu_bytes of
 * boundary activations across the server's NVLink mesh, realized as
 * an owner-to-requester sparse exchange. Used by the testbed as a
 * separate step phase so the exchange cost is measurable on its own.
 */
std::unique_ptr<SyncStrategy>
makeActivationExchange(double per_gpu_bytes);

} // namespace paichar::collectives

#endif // PAICHAR_COLLECTIVES_STRATEGY_H
