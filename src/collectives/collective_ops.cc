#include "collective_ops.h"

#include <cassert>
#include <memory>

namespace paichar::collectives {

double
RingCost::allReduce(int n, double bytes, double link_rate,
                    double phase_latency)
{
    assert(n >= 1);
    if (n == 1)
        return 0.0;
    int phases = 2 * (n - 1);
    return phases * (phase_latency + bytes / n / link_rate);
}

double
RingCost::allGather(int n, double bytes, double link_rate,
                    double phase_latency)
{
    assert(n >= 1);
    if (n == 1)
        return 0.0;
    int phases = n - 1;
    return phases * (phase_latency + bytes / n / link_rate);
}

double
RingCost::sparseExchange(int n, double bytes, double link_rate,
                         int links, double phase_latency)
{
    assert(n >= 1 && links >= 1);
    if (n == 1)
        return 0.0;
    return phase_latency + bytes / n / links / link_rate;
}

CollectiveOps::CollectiveOps(sim::EventQueue &eq, double phase_latency)
    : eq_(eq), phase_latency_(phase_latency)
{
    assert(phase_latency_ >= 0.0);
}

std::vector<sim::Resource *>
CollectiveOps::primaryLinks(const std::vector<sim::Gpu *> &group)
{
    std::vector<sim::Resource *> links;
    links.reserve(group.size());
    for (sim::Gpu *gpu : group) {
        assert(gpu->nvlinkOut() && "collective requires NVLink");
        links.push_back(gpu->nvlinkOut());
    }
    return links;
}

void
CollectiveOps::runPhases(std::vector<sim::Resource *> links,
                         double per_phase_bytes, int phases, Done done)
{
    assert(!links.empty());
    if (phases <= 0 || per_phase_bytes <= 0.0) {
        eq_.scheduleAfter(0.0, [done, &eq = eq_] { done(eq.now()); });
        return;
    }
    // Shared phase state; rounds are chained through completions.
    struct State
    {
        std::vector<sim::Resource *> links;
        double per_phase_bytes;
        int phases_left;
        size_t outstanding = 0;
        Done done;
    };
    auto st = std::make_shared<State>();
    st->links = std::move(links);
    st->per_phase_bytes = per_phase_bytes;
    st->phases_left = phases;
    st->done = std::move(done);

    // Launch one phase: every link carries its chunk concurrently; the
    // next phase starts when the slowest finishes (ring barrier).
    auto launch = std::make_shared<std::function<void()>>();
    double latency = phase_latency_;
    sim::EventQueue &eq = eq_;
    *launch = [st, launch, latency, &eq] {
        st->outstanding = st->links.size();
        for (sim::Resource *link : st->links) {
            link->submit(
                st->per_phase_bytes,
                [st, launch, latency, &eq](sim::SimTime, sim::SimTime) {
                    if (--st->outstanding > 0)
                        return;
                    if (--st->phases_left > 0) {
                        eq.scheduleAfter(latency, [launch] {
                            (*launch)();
                        });
                    } else {
                        eq.scheduleAfter(latency, [st, &eq] {
                            st->done(eq.now());
                        });
                    }
                });
        }
    };
    eq_.scheduleAfter(latency, [launch] { (*launch)(); });
}

void
CollectiveOps::ringAllReduce(const std::vector<sim::Gpu *> &group,
                             double bytes, Done done)
{
    int n = static_cast<int>(group.size());
    assert(n >= 1);
    if (n == 1 || bytes <= 0.0) {
        eq_.scheduleAfter(0.0, [done, &eq = eq_] { done(eq.now()); });
        return;
    }
    runPhases(primaryLinks(group), bytes / n, 2 * (n - 1),
              std::move(done));
}

void
CollectiveOps::ringAllGather(const std::vector<sim::Gpu *> &group,
                             double total_bytes, Done done)
{
    int n = static_cast<int>(group.size());
    assert(n >= 1);
    if (n == 1 || total_bytes <= 0.0) {
        eq_.scheduleAfter(0.0, [done, &eq = eq_] { done(eq.now()); });
        return;
    }
    runPhases(primaryLinks(group), total_bytes / n, n - 1,
              std::move(done));
}

void
CollectiveOps::ringReduceScatter(const std::vector<sim::Gpu *> &group,
                                 double total_bytes, Done done)
{
    // Same schedule as all-gather, opposite data direction.
    ringAllGather(group, total_bytes, std::move(done));
}

void
CollectiveOps::broadcast(const std::vector<sim::Gpu *> &group,
                         double bytes, Done done)
{
    int n = static_cast<int>(group.size());
    assert(n >= 1);
    if (n == 1 || bytes <= 0.0) {
        eq_.scheduleAfter(0.0, [done, &eq = eq_] { done(eq.now()); });
        return;
    }
    // Pipelined chain broadcast: with chunking, time approaches one
    // full buffer per hop-link; model as a single phase of `bytes` on
    // every link but the last GPU's.
    auto links = primaryLinks(group);
    links.pop_back(); // the tail only receives
    runPhases(std::move(links), bytes, 1, std::move(done));
}

void
CollectiveOps::sparseAllToAll(const std::vector<sim::Gpu *> &group,
                              double total_bytes, Done done)
{
    int n = static_cast<int>(group.size());
    assert(n >= 1);
    if (n == 1 || total_bytes <= 0.0) {
        eq_.scheduleAfter(0.0, [done, &eq = eq_] { done(eq.now()); });
        return;
    }
    // Each GPU egresses its owned shard's share (total/n), spread
    // across all of its mesh links in parallel.
    std::vector<sim::Resource *> links;
    for (sim::Gpu *gpu : group) {
        assert(gpu->numNvlinkLinks() > 0 &&
               "sparse exchange requires NVLink");
        for (int l = 0; l < gpu->numNvlinkLinks(); ++l)
            links.push_back(&gpu->nvlinkLink(l));
    }
    double per_link =
        total_bytes / n / group[0]->numNvlinkLinks();
    runPhases(std::move(links), per_link, 1, std::move(done));
}

void
CollectiveOps::nicRingAllReduce(
    const std::vector<sim::Server *> &servers, double bytes, Done done)
{
    int s = static_cast<int>(servers.size());
    assert(s >= 1);
    if (s == 1 || bytes <= 0.0) {
        eq_.scheduleAfter(0.0, [done, &eq = eq_] { done(eq.now()); });
        return;
    }
    std::vector<sim::Resource *> nics;
    nics.reserve(servers.size());
    for (sim::Server *srv : servers)
        nics.push_back(&srv->nic());
    runPhases(std::move(nics), bytes / s, 2 * (s - 1),
              std::move(done));
}

} // namespace paichar::collectives
