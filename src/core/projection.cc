#include "projection.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"

namespace paichar::core {

using workload::ArchType;
using workload::TrainingJob;

TrainingJob
ArchitectureProjector::remap(const TrainingJob &job,
                             ArchType target) const
{
    TrainingJob out = job;
    out.arch = target;
    out.num_ps = 0;
    if (target == ArchType::AllReduceLocal) {
        out.num_cnodes =
            std::min(job.num_cnodes,
                     model_.spec().server.gpus_per_server);
    }
    return out;
}

ProjectionResult
ArchitectureProjector::project(const TrainingJob &job, ArchType target,
                               OverlapMode mode) const
{
    ProjectionResult r;
    r.projected = remap(job, target);
    r.old_step_time = model_.stepTime(job, mode);
    r.new_step_time = model_.stepTime(r.projected, mode);
    assert(r.old_step_time > 0.0 && r.new_step_time > 0.0);
    r.single_node_speedup = r.old_step_time / r.new_step_time;
    double old_tp = model_.throughput(job, mode);
    double new_tp = model_.throughput(r.projected, mode);
    r.throughput_speedup = new_tp / old_tp;
    return r;
}

std::vector<ProjectionResult>
ArchitectureProjector::projectAll(const std::vector<TrainingJob> &jobs,
                                  ArchType target, OverlapMode mode,
                                  runtime::ThreadPool *pool) const
{
    obs::Span span("core.project_all",
                   static_cast<int64_t>(jobs.size()));
    obs::counter("core.jobs_projected").add(jobs.size());
    return runtime::parallelMap<ProjectionResult>(
        pool, jobs.size(),
        [&](size_t i) { return project(jobs[i], target, mode); });
}

} // namespace paichar::core
