#include "analytical_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace paichar::core {

using workload::ArchType;
using workload::TrainingJob;

std::string
toString(Component c)
{
    switch (c) {
      case Component::DataIo:
        return "Data I/O";
      case Component::ComputeFlops:
        return "Comp.(compute-bound)";
      case Component::ComputeMemory:
        return "Comp.(memory-bound)";
      case Component::WeightTraffic:
        return "Weights traffic";
    }
    return "unknown";
}

std::string
toString(HwComponent h)
{
    switch (h) {
      case HwComponent::GpuFlops:
        return "GPU_FLOPs";
      case HwComponent::GpuMemory:
        return "GPU_memory";
      case HwComponent::Pcie:
        return "PCIe";
      case HwComponent::Ethernet:
        return "Ethernet";
      case HwComponent::NvLink:
        return "NVLink";
    }
    return "unknown";
}

double
TimeBreakdown::total(OverlapMode mode) const
{
    double tc = compute();
    if (mode == OverlapMode::IdealOverlap)
        return std::max({t_data, tc, t_weight});
    return t_data + tc + t_weight;
}

double
TimeBreakdown::time(Component c) const
{
    switch (c) {
      case Component::DataIo:
        return t_data;
      case Component::ComputeFlops:
        return t_comp_flops;
      case Component::ComputeMemory:
        return t_comp_mem;
      case Component::WeightTraffic:
        return t_weight;
    }
    return 0.0;
}

double
TimeBreakdown::fraction(Component c) const
{
    double t = total(OverlapMode::NonOverlap);
    return t > 0.0 ? time(c) / t : 0.0;
}

double
TimeBreakdown::hwTime(HwComponent h) const
{
    switch (h) {
      case HwComponent::GpuFlops:
        return t_comp_flops;
      case HwComponent::GpuMemory:
        return t_comp_mem;
      case HwComponent::Pcie:
        return t_data + t_weight_pcie;
      case HwComponent::Ethernet:
        return t_weight_ethernet;
      case HwComponent::NvLink:
        return t_weight_nvlink;
    }
    return 0.0;
}

double
TimeBreakdown::hwFraction(HwComponent h) const
{
    double t = total(OverlapMode::NonOverlap);
    return t > 0.0 ? hwTime(h) / t : 0.0;
}

AnalyticalModel::AnalyticalModel(const hw::ClusterSpec &spec)
    : AnalyticalModel(spec, EfficiencyAssumption{spec.efficiency,
                                                 spec.efficiency})
{
}

AnalyticalModel::AnalyticalModel(const hw::ClusterSpec &spec,
                                 const EfficiencyAssumption &eff)
    : spec_(spec), eff_(eff)
{
    assert(eff_.computation > 0.0 && eff_.computation <= 1.0);
    assert(eff_.communication > 0.0 && eff_.communication <= 1.0);
}

int
AnalyticalModel::colocatedReplicas(const TrainingJob &job,
                                   const hw::ClusterSpec &spec)
{
    switch (job.arch) {
      case ArchType::OneWorkerOneGpu:
        return 1;
      case ArchType::OneWorkerMultiGpu:
      case ArchType::AllReduceLocal:
        // Placed within one physical server by definition.
        return std::min(job.num_cnodes, spec.server.gpus_per_server);
      case ArchType::PsWorker:
        // Each worker node sits on its own server (Sec II-A2).
        return 1;
      case ArchType::AllReduceCluster:
      case ArchType::Pearl:
        // Whole servers are allocated; each server's GPUs share PCIe.
        return std::min(job.num_cnodes, spec.server.gpus_per_server);
    }
    return 1;
}

TimeBreakdown
AnalyticalModel::breakdown(const TrainingJob &job) const
{
    assert(job.features.valid());
    assert(job.num_cnodes >= 1);

    const auto &f = job.features;
    const auto &srv = spec_.server;
    const double flops_eff =
        component_eff_ ? component_eff_->gpu_flops : eff_.computation;
    const double mem_eff =
        component_eff_ ? component_eff_->gpu_memory
                       : eff_.computation;
    const double pcie_eff =
        component_eff_ ? component_eff_->pcie : eff_.communication;
    const double net_eff =
        component_eff_ ? component_eff_->network : eff_.communication;

    TimeBreakdown b;
    b.t_comp_flops = f.flop_count / (srv.gpu.peak_flops * flops_eff);
    b.t_comp_mem =
        f.mem_access_bytes / (srv.gpu.mem_bandwidth * mem_eff);

    const double pcie_bw = srv.pcie_bandwidth * pcie_eff;
    const double eth_bw = spec_.ethernet_bandwidth * net_eff;
    const double nvl_bw = srv.nvlink_bandwidth * net_eff;
    const int share =
        pcie_contention_ ? colocatedReplicas(job, spec_) : 1;

    // Input samples travel host->GPU over a PCIe root shared by all
    // replicas co-located on the server (Sec III-C1's slow-down).
    b.t_data = f.input_bytes * share / pcie_bw;

    const double sw = f.comm_bytes;
    // Optional ring-traffic factor 2(n-1)/n (setRingAware).
    const double n = std::max(1, job.num_cnodes);
    const double ring =
        ring_aware_ && job.num_cnodes > 1 ? 2.0 * (n - 1.0) / n : 1.0;
    switch (job.arch) {
      case ArchType::OneWorkerOneGpu:
        break; // no weight movement
      case ArchType::OneWorkerMultiGpu:
        // Params live on the host CPU; every replica's pull+push
        // crosses the shared PCIe root.
        b.t_weight_pcie = sw * share / pcie_bw;
        break;
      case ArchType::PsWorker:
        // Serial legs: server NIC, then host-to-GPU (Table II, Eq 3).
        b.t_weight_ethernet = sw / eth_bw;
        b.t_weight_pcie = sw / pcie_bw;
        break;
      case ArchType::AllReduceLocal:
        b.t_weight_nvlink = ring * sw / nvl_bw;
        break;
      case ArchType::Pearl: {
        // Sec IV-C: embedding traffic is partitioned across the GPUs
        // (AllGatherv / ReduceScatter), dense traffic is replicated.
        double per_gpu = f.denseCommBytes() +
                         f.embedding_comm_bytes / job.num_cnodes;
        b.t_weight_nvlink = per_gpu / nvl_bw;
        break;
      }
      case ArchType::AllReduceCluster:
        b.t_weight_ethernet = sw / eth_bw;
        b.t_weight_nvlink = ring * sw / nvl_bw;
        break;
    }
    b.t_weight =
        b.t_weight_ethernet + b.t_weight_pcie + b.t_weight_nvlink;
    return b;
}

double
AnalyticalModel::stepTime(const TrainingJob &job, OverlapMode mode) const
{
    return breakdown(job).total(mode);
}

double
AnalyticalModel::throughput(const TrainingJob &job,
                            OverlapMode mode) const
{
    double t = stepTime(job, mode);
    assert(t > 0.0);
    return static_cast<double>(job.num_cnodes) / t *
           job.features.batch_size;
}

} // namespace paichar::core
