#include "sweep.h"

#include <cassert>

#include "obs/obs.h"
#include "runtime/parallel.h"

namespace paichar::core {

using workload::TrainingJob;

double
HardwareSweep::avgSpeedup(const std::vector<TrainingJob> &jobs,
                          hw::Resource resource, double value,
                          OverlapMode mode) const
{
    assert(!jobs.empty());
    AnalyticalModel base_model(base_);
    AnalyticalModel new_model(hw::withResource(base_, resource, value));
    // Fixed-grain chunked sum: bit-identical for every thread count,
    // and identical whether called directly or from a run() task
    // (nested calls fall back to the same chunk order inline).
    double acc = runtime::parallelReduce(
        pool_, jobs.size(), 0.0,
        [&](size_t lo, size_t hi) {
            double s = 0.0;
            for (size_t i = lo; i < hi; ++i) {
                double t0 = base_model.stepTime(jobs[i], mode);
                double t1 = new_model.stepTime(jobs[i], mode);
                assert(t0 > 0.0 && t1 > 0.0);
                s += t0 / t1;
            }
            return s;
        },
        [](double a, double b) { return a + b; });
    return acc / static_cast<double>(jobs.size());
}

std::vector<SweepSeries>
HardwareSweep::run(const std::vector<TrainingJob> &jobs,
                   const hw::HardwareVariations &variations,
                   OverlapMode mode) const
{
    // Flatten the grid so every (resource, value) point is one task.
    struct GridPoint
    {
        hw::Resource resource;
        double value;
    };
    std::vector<GridPoint> grid;
    auto addSeries = [&](hw::Resource r,
                         const std::vector<double> &values) {
        for (double v : values)
            grid.push_back({r, v});
    };
    addSeries(hw::Resource::Ethernet, variations.ethernet_gbps);
    addSeries(hw::Resource::Pcie, variations.pcie_gbs);
    addSeries(hw::Resource::GpuFlops, variations.gpu_peak_tflops);
    addSeries(hw::Resource::GpuMemory, variations.gpu_mem_tbs);

    obs::Span span("core.sweep", static_cast<int64_t>(grid.size()));
    obs::counter("core.sweep_points").add(grid.size());
    auto points = runtime::parallelMap<SweepPoint>(
        pool_, grid.size(), [&](size_t i) {
            SweepPoint p;
            p.resource = grid[i].resource;
            p.value = grid[i].value;
            p.normalized =
                hw::normalizedResource(base_, p.resource, p.value);
            p.avg_speedup =
                avgSpeedup(jobs, p.resource, p.value, mode);
            return p;
        });

    // Regroup into series, preserving Table III order.
    std::vector<SweepSeries> out;
    for (const SweepPoint &p : points) {
        if (out.empty() || out.back().resource != p.resource) {
            SweepSeries s;
            s.resource = p.resource;
            out.push_back(std::move(s));
        }
        out.back().points.push_back(p);
    }
    return out;
}

} // namespace paichar::core
