#include "sweep.h"

#include <cassert>

namespace paichar::core {

using workload::TrainingJob;

double
HardwareSweep::avgSpeedup(const std::vector<TrainingJob> &jobs,
                          hw::Resource resource, double value,
                          OverlapMode mode) const
{
    assert(!jobs.empty());
    AnalyticalModel base_model(base_);
    AnalyticalModel new_model(hw::withResource(base_, resource, value));
    double acc = 0.0;
    for (const TrainingJob &job : jobs) {
        double t0 = base_model.stepTime(job, mode);
        double t1 = new_model.stepTime(job, mode);
        assert(t0 > 0.0 && t1 > 0.0);
        acc += t0 / t1;
    }
    return acc / static_cast<double>(jobs.size());
}

std::vector<SweepSeries>
HardwareSweep::run(const std::vector<TrainingJob> &jobs,
                   const hw::HardwareVariations &variations,
                   OverlapMode mode) const
{
    std::vector<SweepSeries> out;
    auto addSeries = [&](hw::Resource r,
                         const std::vector<double> &values) {
        SweepSeries s;
        s.resource = r;
        for (double v : values) {
            SweepPoint p;
            p.resource = r;
            p.value = v;
            p.normalized = hw::normalizedResource(base_, r, v);
            p.avg_speedup = avgSpeedup(jobs, r, v, mode);
            s.points.push_back(p);
        }
        out.push_back(std::move(s));
    };
    addSeries(hw::Resource::Ethernet, variations.ethernet_gbps);
    addSeries(hw::Resource::Pcie, variations.pcie_gbs);
    addSeries(hw::Resource::GpuFlops, variations.gpu_peak_tflops);
    addSeries(hw::Resource::GpuMemory, variations.gpu_mem_tbs);
    return out;
}

} // namespace paichar::core
