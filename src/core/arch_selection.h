/**
 * @file
 * System-architecture selection (Sec VI-A1): given a workload's
 * features and the hardware, enumerate the feasible training
 * architectures, predict each one's step time and throughput with the
 * analytical model, and recommend the best.
 *
 * Placement and feasibility rules are shared with the optimization
 * planner's cost models: see core/arch_feasibility.h for the single
 * statement of the paper's constraints (weight residency, NVLink,
 * per-server GPU caps).
 */

#ifndef PAICHAR_CORE_ARCH_SELECTION_H
#define PAICHAR_CORE_ARCH_SELECTION_H

#include <string>
#include <vector>

#include "core/analytical_model.h"
#include "runtime/parallel.h"
#include "workload/training_job.h"

namespace paichar::core {

/** One evaluated architecture option. */
struct ArchOption
{
    workload::ArchType arch;
    /** cNodes after applying the architecture's placement rules. */
    int num_cnodes = 1;
    /** Per-GPU resident parameter bytes this choice requires. */
    double per_gpu_weight_bytes = 0.0;
    /** Whether the weights fit the per-GPU memory budget. */
    bool feasible = false;
    /** Why not, when infeasible. */
    std::string reason;
    /** Predicted step time (only meaningful when feasible). */
    double step_time = 0.0;
    /** Predicted throughput, Eq 2 (only meaningful when feasible). */
    double throughput = 0.0;
};

/** Recommends a training architecture for a workload. */
class ArchitectureAdvisor
{
  public:
    /**
     * @param model            Analytical model (hardware in use).
     * @param gpu_memory_bytes Per-GPU memory capacity used for the
     *                         weight-residency feasibility check
     *                         (e.g. 32 GB for V100-32G). Activations
     *                         are assumed to fit alongside a derated
     *                         budget; pass the budget you are willing
     *                         to spend on parameters.
     */
    ArchitectureAdvisor(const AnalyticalModel &model,
                        double gpu_memory_bytes);

    /**
     * Evaluate every architecture for @p job (the job's current
     * architecture is included). Options are returned in descending
     * throughput order with infeasible options last.
     */
    std::vector<ArchOption>
    evaluate(const workload::TrainingJob &job,
             OverlapMode mode = OverlapMode::NonOverlap) const;

    /**
     * The recommended option: the feasible architecture with the
     * highest predicted throughput.
     */
    ArchOption recommend(const workload::TrainingJob &job,
                         OverlapMode mode = OverlapMode::NonOverlap)
        const;

    /**
     * Recommend for a whole population, fanning out over @p pool
     * (nullptr = serial). out[i] is the recommendation for jobs[i]
     * regardless of thread count.
     */
    std::vector<ArchOption>
    recommendAll(const std::vector<workload::TrainingJob> &jobs,
                 OverlapMode mode = OverlapMode::NonOverlap,
                 runtime::ThreadPool *pool =
                     runtime::globalPool()) const;

  private:
    ArchOption evaluateOne(const workload::TrainingJob &job,
                           workload::ArchType arch,
                           OverlapMode mode) const;

    const AnalyticalModel &model_;
    double gpu_memory_bytes_;
};

} // namespace paichar::core

#endif // PAICHAR_CORE_ARCH_SELECTION_H
