/**
 * @file
 * Hardware-evolution what-if analysis (Sec III-C2, Table III, Fig 11):
 * vary one resource at a time across the Table III candidates and
 * report the average speedup each variation buys a job population.
 */

#ifndef PAICHAR_CORE_SWEEP_H
#define PAICHAR_CORE_SWEEP_H

#include <vector>

#include "core/analytical_model.h"
#include "hw/hardware_config.h"
#include "runtime/parallel.h"
#include "workload/training_job.h"

namespace paichar::core {

/** One point of a Fig 11 series. */
struct SweepPoint
{
    hw::Resource resource;
    /** Raw candidate value in Table III units. */
    double value = 0.0;
    /** Value normalized to the base configuration (Fig 11 x-axis). */
    double normalized = 0.0;
    /** Mean of per-job (base step time / new step time). */
    double avg_speedup = 1.0;
};

/** One resource's full series. */
struct SweepSeries
{
    hw::Resource resource;
    std::vector<SweepPoint> points;
};

/** Runs the Table III variation grid against a job population. */
class HardwareSweep
{
  public:
    /**
     * @param base Base cluster configuration (speedups are relative
     *             to it); its `efficiency` is used for both axes.
     * @param pool Worker pool: run() fans out one task per sweep
     *             point, avgSpeedup() chunks over the jobs (nullptr =
     *             serial). Results are bit-identical either way.
     */
    explicit HardwareSweep(const hw::ClusterSpec &base,
                           runtime::ThreadPool *pool =
                               runtime::globalPool())
        : base_(base), pool_(pool)
    {
    }

    /**
     * Evaluate every variation against @p jobs.
     *
     * @param jobs        Population (already filtered/projected by
     *                    the caller, e.g. only PS/Worker jobs for
     *                    Fig 11(c)).
     * @param variations  The candidate grid (Table III by default).
     * @param mode        Overlap assumption for step times.
     * @return One series per resource, in Table III order.
     */
    std::vector<SweepSeries>
    run(const std::vector<workload::TrainingJob> &jobs,
        const hw::HardwareVariations &variations =
            hw::tableIiiVariations(),
        OverlapMode mode = OverlapMode::NonOverlap) const;

    /** Mean speedup for a single (resource, value) variation. */
    double avgSpeedup(const std::vector<workload::TrainingJob> &jobs,
                      hw::Resource resource, double value,
                      OverlapMode mode = OverlapMode::NonOverlap) const;

  private:
    hw::ClusterSpec base_;
    runtime::ThreadPool *pool_;
};

} // namespace paichar::core

#endif // PAICHAR_CORE_SWEEP_H
