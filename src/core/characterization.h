/**
 * @file
 * Cluster-level collective-behavior analysis (Sec III): constitution,
 * scale distributions, and execution-time breakdowns at job level and
 * cNode level, exactly as reported in Figs 5-8.
 */

#ifndef PAICHAR_CORE_CHARACTERIZATION_H
#define PAICHAR_CORE_CHARACTERIZATION_H

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/analytical_model.h"
#include "runtime/parallel.h"
#include "stats/cdf.h"
#include "workload/job_store.h"
#include "workload/training_job.h"

namespace paichar::core {

/** Aggregation level for cluster statistics. */
enum class Level
{
    /** Every job weighs 1 (left columns of Figs 5/7, top of Fig 8). */
    Job,
    /** Every job weighs its cNode count (right columns / bottom). */
    CNode,
};

/** Fig 5: how jobs and cNodes split across architectures. */
struct Constitution
{
    std::map<workload::ArchType, int64_t> job_counts;
    std::map<workload::ArchType, int64_t> cnode_counts;
    int64_t total_jobs = 0;
    int64_t total_cnodes = 0;

    /** Share of jobs of the given architecture. */
    double jobShare(workload::ArchType a) const;
    /** Share of cNodes held by jobs of the given architecture. */
    double cnodeShare(workload::ArchType a) const;
};

/**
 * Computes the paper's collective statistics over a job population.
 * Breakdowns are evaluated once with the supplied analytical model and
 * cached; all queries are side-effect free afterwards.
 *
 * Per-job breakdowns and the CDF/average accumulators fan out over
 * the runtime thread pool; every result is bit-identical regardless
 * of the thread count (see runtime/parallel.h).
 */
class ClusterCharacterizer
{
  public:
    /**
     * @param model Analytical model to evaluate every job with; must
     *              outlive the characterizer.
     * @param jobs  The job population (a synthetic or real trace).
     * @param pool  Worker pool for the fan-out paths (nullptr =
     *              serial); must outlive the characterizer.
     */
    ClusterCharacterizer(const AnalyticalModel &model,
                         std::vector<workload::TrainingJob> jobs,
                         runtime::ThreadPool *pool =
                             runtime::globalPool());

    /**
     * Same, over a JobStore — the zero-copy path: a store borrowed
     * from an mmap'd `paib` trace is analyzed without ever
     * materializing a jobs vector.
     */
    ClusterCharacterizer(const AnalyticalModel &model,
                         workload::JobStore jobs,
                         runtime::ThreadPool *pool =
                             runtime::globalPool());

    /** The analyzed jobs (iterable; jobs assemble on access in the
        zero-copy case). */
    const workload::JobStore &jobs() const { return jobs_; }

    /** Cached breakdown of jobs()[i]. */
    const TimeBreakdown &breakdownOf(size_t i) const;

    /** Fig 5: workload constitution. */
    Constitution constitution() const;

    /** Fig 6(a): CDF of the cNode count for one architecture. */
    stats::WeightedCdf cnodeCountCdf(workload::ArchType arch) const;

    /**
     * Fig 6(b): CDF of total model weight size in bytes, optionally
     * restricted to one architecture.
     */
    stats::WeightedCdf
    weightSizeCdf(std::optional<workload::ArchType> arch) const;

    /**
     * Fig 7: average component shares, in kAllComponents order,
     * optionally restricted to one architecture. Job level averages
     * fractions uniformly; cNode level weights jobs by cNode count.
     */
    std::array<double, 4>
    avgBreakdown(std::optional<workload::ArchType> arch,
                 Level level) const;

    /** Fig 8(b-d): CDF of one component's share of step time. */
    stats::WeightedCdf
    componentCdf(Component c, std::optional<workload::ArchType> arch,
                 Level level) const;

    /** Fig 8(a): CDF of one hardware component's share. */
    stats::WeightedCdf hwComponentCdf(HwComponent h, Level level) const;

  private:
    double levelWeight(const workload::TrainingJob &job,
                       Level level) const;

    const AnalyticalModel &model_;
    workload::JobStore jobs_;
    std::vector<TimeBreakdown> breakdowns_;
    runtime::ThreadPool *pool_;
};

} // namespace paichar::core

#endif // PAICHAR_CORE_CHARACTERIZATION_H
