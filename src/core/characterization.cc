#include "characterization.h"

#include <cassert>
#include <utility>

#include "obs/obs.h"

namespace paichar::core {

using workload::ArchType;
using workload::TrainingJob;

namespace {

/** Weighted samples collected per fixed-size chunk; appending the
 *  chunks in order reproduces the serial insertion order exactly. */
using SampleVec = std::vector<std::pair<double, double>>;

SampleVec
appendSamples(SampleVec acc, SampleVec part)
{
    acc.insert(acc.end(), part.begin(), part.end());
    return acc;
}

stats::WeightedCdf
toCdf(const SampleVec &samples)
{
    stats::WeightedCdf cdf;
    for (const auto &[value, weight] : samples)
        cdf.add(value, weight);
    return cdf;
}

} // namespace

double
Constitution::jobShare(ArchType a) const
{
    if (total_jobs == 0)
        return 0.0;
    auto it = job_counts.find(a);
    return it == job_counts.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(total_jobs);
}

double
Constitution::cnodeShare(ArchType a) const
{
    if (total_cnodes == 0)
        return 0.0;
    auto it = cnode_counts.find(a);
    return it == cnode_counts.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(total_cnodes);
}

ClusterCharacterizer::ClusterCharacterizer(const AnalyticalModel &model,
                                           std::vector<TrainingJob> jobs,
                                           runtime::ThreadPool *pool)
    : ClusterCharacterizer(model,
                           workload::JobStore(std::move(jobs)), pool)
{
}

ClusterCharacterizer::ClusterCharacterizer(const AnalyticalModel &model,
                                           workload::JobStore jobs,
                                           runtime::ThreadPool *pool)
    : model_(model), jobs_(std::move(jobs)), pool_(pool)
{
    // The model-evaluation hot path: every job's analytical
    // breakdown, computed once up front.
    obs::Span span("core.model_breakdowns",
                   static_cast<int64_t>(jobs_.size()));
    obs::counter("core.jobs_evaluated").add(jobs_.size());
    breakdowns_.resize(jobs_.size());
    runtime::parallelFor(pool_, jobs_.size(), [&](size_t i) {
        breakdowns_[i] = model_.breakdown(jobs_.job(i));
    });
}

const TimeBreakdown &
ClusterCharacterizer::breakdownOf(size_t i) const
{
    assert(i < breakdowns_.size());
    return breakdowns_[i];
}

Constitution
ClusterCharacterizer::constitution() const
{
    Constitution c;
    for (const TrainingJob &job : jobs_) {
        ++c.job_counts[job.arch];
        c.cnode_counts[job.arch] += job.num_cnodes;
        ++c.total_jobs;
        c.total_cnodes += job.num_cnodes;
    }
    return c;
}

stats::WeightedCdf
ClusterCharacterizer::cnodeCountCdf(ArchType arch) const
{
    auto samples = runtime::parallelReduce(
        pool_, jobs_.size(), SampleVec{},
        [&](size_t lo, size_t hi) {
            SampleVec part;
            for (size_t i = lo; i < hi; ++i) {
                const TrainingJob job = jobs_.job(i);
                if (job.arch == arch)
                    part.emplace_back(
                        static_cast<double>(job.num_cnodes), 1.0);
            }
            return part;
        },
        appendSamples);
    return toCdf(samples);
}

stats::WeightedCdf
ClusterCharacterizer::weightSizeCdf(std::optional<ArchType> arch) const
{
    auto samples = runtime::parallelReduce(
        pool_, jobs_.size(), SampleVec{},
        [&](size_t lo, size_t hi) {
            SampleVec part;
            for (size_t i = lo; i < hi; ++i) {
                const TrainingJob job = jobs_.job(i);
                if (!arch || job.arch == *arch)
                    part.emplace_back(job.features.weightBytes(),
                                      1.0);
            }
            return part;
        },
        appendSamples);
    return toCdf(samples);
}

double
ClusterCharacterizer::levelWeight(const TrainingJob &job,
                                  Level level) const
{
    return level == Level::Job ? 1.0
                               : static_cast<double>(job.num_cnodes);
}

std::array<double, 4>
ClusterCharacterizer::avgBreakdown(std::optional<ArchType> arch,
                                   Level level) const
{
    obs::Span span("core.avg_breakdown",
                   static_cast<int64_t>(jobs_.size()));
    struct Partial
    {
        std::array<double, 4> acc{};
        double weight = 0.0;
    };
    Partial p = runtime::parallelReduce(
        pool_, jobs_.size(), Partial{},
        [&](size_t lo, size_t hi) {
            Partial part;
            for (size_t i = lo; i < hi; ++i) {
                const TrainingJob job = jobs_.job(i);
                if (arch && job.arch != *arch)
                    continue;
                double w = levelWeight(job, level);
                for (size_t c = 0; c < 4; ++c)
                    part.acc[c] +=
                        w * breakdowns_[i].fraction(kAllComponents[c]);
                part.weight += w;
            }
            return part;
        },
        [](Partial a, Partial b) {
            for (size_t c = 0; c < 4; ++c)
                a.acc[c] += b.acc[c];
            a.weight += b.weight;
            return a;
        });
    if (p.weight > 0.0) {
        for (double &v : p.acc)
            v /= p.weight;
    }
    return p.acc;
}

stats::WeightedCdf
ClusterCharacterizer::componentCdf(Component c,
                                   std::optional<ArchType> arch,
                                   Level level) const
{
    obs::Span span("core.component_cdf",
                   static_cast<int64_t>(jobs_.size()));
    auto samples = runtime::parallelReduce(
        pool_, jobs_.size(), SampleVec{},
        [&](size_t lo, size_t hi) {
            SampleVec part;
            for (size_t i = lo; i < hi; ++i) {
                const TrainingJob job = jobs_.job(i);
                if (arch && job.arch != *arch)
                    continue;
                part.emplace_back(breakdowns_[i].fraction(c),
                                  levelWeight(job, level));
            }
            return part;
        },
        appendSamples);
    return toCdf(samples);
}

stats::WeightedCdf
ClusterCharacterizer::hwComponentCdf(HwComponent h, Level level) const
{
    auto samples = runtime::parallelReduce(
        pool_, jobs_.size(), SampleVec{},
        [&](size_t lo, size_t hi) {
            SampleVec part;
            for (size_t i = lo; i < hi; ++i) {
                part.emplace_back(breakdowns_[i].hwFraction(h),
                                  levelWeight(jobs_.job(i), level));
            }
            return part;
        },
        appendSamples);
    return toCdf(samples);
}

} // namespace paichar::core
