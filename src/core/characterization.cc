#include "characterization.h"

#include <cassert>

namespace paichar::core {

using workload::ArchType;
using workload::TrainingJob;

double
Constitution::jobShare(ArchType a) const
{
    if (total_jobs == 0)
        return 0.0;
    auto it = job_counts.find(a);
    return it == job_counts.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(total_jobs);
}

double
Constitution::cnodeShare(ArchType a) const
{
    if (total_cnodes == 0)
        return 0.0;
    auto it = cnode_counts.find(a);
    return it == cnode_counts.end()
               ? 0.0
               : static_cast<double>(it->second) /
                     static_cast<double>(total_cnodes);
}

ClusterCharacterizer::ClusterCharacterizer(const AnalyticalModel &model,
                                           std::vector<TrainingJob> jobs)
    : model_(model), jobs_(std::move(jobs))
{
    breakdowns_.reserve(jobs_.size());
    for (const TrainingJob &job : jobs_)
        breakdowns_.push_back(model_.breakdown(job));
}

const TimeBreakdown &
ClusterCharacterizer::breakdownOf(size_t i) const
{
    assert(i < breakdowns_.size());
    return breakdowns_[i];
}

Constitution
ClusterCharacterizer::constitution() const
{
    Constitution c;
    for (const TrainingJob &job : jobs_) {
        ++c.job_counts[job.arch];
        c.cnode_counts[job.arch] += job.num_cnodes;
        ++c.total_jobs;
        c.total_cnodes += job.num_cnodes;
    }
    return c;
}

stats::WeightedCdf
ClusterCharacterizer::cnodeCountCdf(ArchType arch) const
{
    stats::WeightedCdf cdf;
    for (const TrainingJob &job : jobs_) {
        if (job.arch == arch)
            cdf.add(static_cast<double>(job.num_cnodes));
    }
    return cdf;
}

stats::WeightedCdf
ClusterCharacterizer::weightSizeCdf(std::optional<ArchType> arch) const
{
    stats::WeightedCdf cdf;
    for (const TrainingJob &job : jobs_) {
        if (!arch || job.arch == *arch)
            cdf.add(job.features.weightBytes());
    }
    return cdf;
}

double
ClusterCharacterizer::levelWeight(const TrainingJob &job,
                                  Level level) const
{
    return level == Level::Job ? 1.0
                               : static_cast<double>(job.num_cnodes);
}

std::array<double, 4>
ClusterCharacterizer::avgBreakdown(std::optional<ArchType> arch,
                                   Level level) const
{
    std::array<double, 4> acc{};
    double total_weight = 0.0;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (arch && jobs_[i].arch != *arch)
            continue;
        double w = levelWeight(jobs_[i], level);
        for (size_t c = 0; c < 4; ++c)
            acc[c] += w * breakdowns_[i].fraction(kAllComponents[c]);
        total_weight += w;
    }
    if (total_weight > 0.0) {
        for (double &v : acc)
            v /= total_weight;
    }
    return acc;
}

stats::WeightedCdf
ClusterCharacterizer::componentCdf(Component c,
                                   std::optional<ArchType> arch,
                                   Level level) const
{
    stats::WeightedCdf cdf;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (arch && jobs_[i].arch != *arch)
            continue;
        cdf.add(breakdowns_[i].fraction(c),
                levelWeight(jobs_[i], level));
    }
    return cdf;
}

stats::WeightedCdf
ClusterCharacterizer::hwComponentCdf(HwComponent h, Level level) const
{
    stats::WeightedCdf cdf;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        cdf.add(breakdowns_[i].hwFraction(h),
                levelWeight(jobs_[i], level));
    }
    return cdf;
}

} // namespace paichar::core
