/**
 * @file
 * Shared architecture-placement and feasibility rules (Sec III-A,
 * IV-C, VI-A1). This is the single source of truth consumed by both
 * ArchitectureAdvisor (core) and the optimization planner's cost
 * models (opt); the two layers previously duplicated these rules.
 *
 * Feasibility encodes the paper's constraints:
 *  - replicated AllReduce requires the full parameter set (dense +
 *    embedding + optimizer state) to fit in one GPU's memory
 *    ("only weight-replica mode is supported", Sec III-A);
 *  - PEARL requires NVLink and only needs the dense weights plus an
 *    embedding shard per GPU (Sec IV-C);
 *  - AllReduce-Local additionally caps the job at one server's GPUs;
 *  - PS/Worker and 1wng park parameters in host memory and are always
 *    feasible (the paper's fallback for 100-300 GB models).
 *
 * Beyond the paper, resolvePlacement() also models hybrid
 * data+model parallelism: a partition degree `ways` > 1 splits the
 * model (sub-graph or channel/filter parallelism) across `ways`
 * GPUs that must share a server's NVLink mesh, dividing the per-GPU
 * resident weights by `ways`. This is what makes the AllReduce
 * family reachable for models whose full replica exceeds GPU memory
 * (the planner's hybrid-parallelism search).
 */

#ifndef PAICHAR_CORE_ARCH_FEASIBILITY_H
#define PAICHAR_CORE_ARCH_FEASIBILITY_H

#include <string>

#include "hw/hardware_config.h"
#include "workload/arch_type.h"
#include "workload/workload_features.h"

namespace paichar::core {

/** Resolved placement of one job under one architecture. */
struct Placement
{
    workload::ArchType arch = workload::ArchType::OneWorkerOneGpu;
    /** cNodes after the architecture's placement rules. */
    int num_cnodes = 1;
    /** Per-GPU resident parameter bytes this choice requires. */
    double per_gpu_weight_bytes = 0.0;
    /** Whether the placement satisfies every constraint. */
    bool feasible = false;
    /** Why not, when infeasible. */
    std::string reason;
};

/**
 * Apply one architecture's placement rules to a workload.
 *
 * @param f                Per-step, per-cNode workload demands.
 * @param arch             Candidate architecture.
 * @param requested_cnodes Desired replica count before clamping.
 * @param server           Server hardware (GPU count, NVLink).
 * @param gpu_memory_bytes Per-GPU parameter-memory budget.
 * @param partition_ways   Model-partition degree (1 = pure data
 *                         parallel). Shard groups live inside one
 *                         server and exchange activations over
 *                         NVLink, so ways > 1 requires NVLink and
 *                         ways <= gpus_per_server; the resolved
 *                         cNode count is a multiple of ways.
 */
Placement resolvePlacement(const workload::WorkloadFeatures &f,
                           workload::ArchType arch,
                           int requested_cnodes,
                           const hw::ServerSpec &server,
                           double gpu_memory_bytes,
                           int partition_ways = 1);

} // namespace paichar::core

#endif // PAICHAR_CORE_ARCH_FEASIBILITY_H
