#include "arch_selection.h"

#include <algorithm>
#include <cassert>

#include "core/arch_feasibility.h"
#include "obs/obs.h"

namespace paichar::core {

using workload::ArchType;
using workload::TrainingJob;

ArchitectureAdvisor::ArchitectureAdvisor(const AnalyticalModel &model,
                                         double gpu_memory_bytes)
    : model_(model), gpu_memory_bytes_(gpu_memory_bytes)
{
    assert(gpu_memory_bytes_ > 0.0);
}

ArchOption
ArchitectureAdvisor::evaluateOne(const TrainingJob &job, ArchType arch,
                                 OverlapMode mode) const
{
    // Placement and feasibility come from the shared rules (also used
    // by the optimization planner's cost models).
    Placement p =
        resolvePlacement(job.features, arch, job.num_cnodes,
                         model_.spec().server, gpu_memory_bytes_);

    ArchOption opt;
    opt.arch = arch;
    opt.num_cnodes = p.num_cnodes;
    opt.per_gpu_weight_bytes = p.per_gpu_weight_bytes;
    opt.feasible = p.feasible;
    opt.reason = p.reason;
    if (!opt.feasible)
        return opt;
    TrainingJob variant = job;
    variant.arch = arch;
    variant.num_cnodes = opt.num_cnodes;
    variant.num_ps = arch == ArchType::PsWorker
                         ? std::max(1, opt.num_cnodes / 4)
                         : 0;
    opt.step_time = model_.stepTime(variant, mode);
    opt.throughput = model_.throughput(variant, mode);
    return opt;
}

std::vector<ArchOption>
ArchitectureAdvisor::evaluate(const TrainingJob &job,
                              OverlapMode mode) const
{
    std::vector<ArchOption> options;
    for (ArchType arch : workload::kAllArchTypes)
        options.push_back(evaluateOne(job, arch, mode));
    std::stable_sort(options.begin(), options.end(),
                     [](const ArchOption &a, const ArchOption &b) {
                         if (a.feasible != b.feasible)
                             return a.feasible;
                         return a.throughput > b.throughput;
                     });
    return options;
}

ArchOption
ArchitectureAdvisor::recommend(const TrainingJob &job,
                               OverlapMode mode) const
{
    auto options = evaluate(job, mode);
    assert(!options.empty());
    // PS/Worker and 1w1g are always feasible, so the front is too.
    assert(options.front().feasible);
    return options.front();
}

std::vector<ArchOption>
ArchitectureAdvisor::recommendAll(const std::vector<TrainingJob> &jobs,
                                  OverlapMode mode,
                                  runtime::ThreadPool *pool) const
{
    obs::Span span("core.advise", static_cast<int64_t>(jobs.size()));
    obs::counter("core.jobs_advised").add(jobs.size());
    return runtime::parallelMap<ArchOption>(
        pool, jobs.size(),
        [&](size_t i) { return recommend(jobs[i], mode); });
}

} // namespace paichar::core
