#include "arch_selection.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"

namespace paichar::core {

using workload::ArchType;
using workload::TrainingJob;

ArchitectureAdvisor::ArchitectureAdvisor(const AnalyticalModel &model,
                                         double gpu_memory_bytes)
    : model_(model), gpu_memory_bytes_(gpu_memory_bytes)
{
    assert(gpu_memory_bytes_ > 0.0);
}

ArchOption
ArchitectureAdvisor::evaluateOne(const TrainingJob &job, ArchType arch,
                                 OverlapMode mode) const
{
    const auto &f = job.features;
    const auto &spec = model_.spec();

    ArchOption opt;
    opt.arch = arch;
    opt.num_cnodes = job.num_cnodes;

    switch (arch) {
      case ArchType::OneWorkerOneGpu:
        opt.num_cnodes = 1;
        opt.per_gpu_weight_bytes = f.weightBytes();
        break;
      case ArchType::OneWorkerMultiGpu:
        opt.num_cnodes = std::min(job.num_cnodes,
                                  spec.server.gpus_per_server);
        // Parameters live in host memory; GPUs hold working copies of
        // the dense part only.
        opt.per_gpu_weight_bytes = f.dense_weight_bytes;
        break;
      case ArchType::PsWorker:
        // Parameters are partitioned across PS hosts; a worker GPU
        // holds the dense replica plus the rows of the current batch.
        opt.per_gpu_weight_bytes = f.dense_weight_bytes + f.comm_bytes;
        break;
      case ArchType::AllReduceLocal:
        opt.num_cnodes = std::min(job.num_cnodes,
                                  spec.server.gpus_per_server);
        opt.per_gpu_weight_bytes = f.weightBytes();
        break;
      case ArchType::AllReduceCluster:
        opt.per_gpu_weight_bytes = f.weightBytes();
        break;
      case ArchType::Pearl:
        opt.num_cnodes = std::min(job.num_cnodes,
                                  spec.server.gpus_per_server);
        opt.per_gpu_weight_bytes =
            f.dense_weight_bytes +
            f.embedding_weight_bytes /
                std::max(1, opt.num_cnodes);
        break;
    }

    bool needs_nvlink = arch == ArchType::AllReduceLocal ||
                        arch == ArchType::AllReduceCluster ||
                        arch == ArchType::Pearl;
    if (needs_nvlink && !spec.server.has_nvlink) {
        opt.feasible = false;
        opt.reason = "requires NVLink servers";
        return opt;
    }
    if (opt.per_gpu_weight_bytes > gpu_memory_bytes_) {
        opt.feasible = false;
        opt.reason = "weights exceed per-GPU memory budget";
        return opt;
    }

    opt.feasible = true;
    TrainingJob variant = job;
    variant.arch = arch;
    variant.num_cnodes = opt.num_cnodes;
    variant.num_ps = arch == ArchType::PsWorker
                         ? std::max(1, opt.num_cnodes / 4)
                         : 0;
    opt.step_time = model_.stepTime(variant, mode);
    opt.throughput = model_.throughput(variant, mode);
    return opt;
}

std::vector<ArchOption>
ArchitectureAdvisor::evaluate(const TrainingJob &job,
                              OverlapMode mode) const
{
    std::vector<ArchOption> options;
    for (ArchType arch : workload::kAllArchTypes)
        options.push_back(evaluateOne(job, arch, mode));
    std::stable_sort(options.begin(), options.end(),
                     [](const ArchOption &a, const ArchOption &b) {
                         if (a.feasible != b.feasible)
                             return a.feasible;
                         return a.throughput > b.throughput;
                     });
    return options;
}

ArchOption
ArchitectureAdvisor::recommend(const TrainingJob &job,
                               OverlapMode mode) const
{
    auto options = evaluate(job, mode);
    assert(!options.empty());
    // PS/Worker and 1w1g are always feasible, so the front is too.
    assert(options.front().feasible);
    return options.front();
}

std::vector<ArchOption>
ArchitectureAdvisor::recommendAll(const std::vector<TrainingJob> &jobs,
                                  OverlapMode mode,
                                  runtime::ThreadPool *pool) const
{
    obs::Span span("core.advise", static_cast<int64_t>(jobs.size()));
    obs::counter("core.jobs_advised").add(jobs.size());
    return runtime::parallelMap<ArchOption>(
        pool, jobs.size(),
        [&](size_t i) { return recommend(jobs[i], mode); });
}

} // namespace paichar::core
