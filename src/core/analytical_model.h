/**
 * @file
 * The paper's analytical performance model (Sec II-B).
 *
 * One training step decomposes into:
 *   Td = Sd / Bd                      (input data I/O)
 *   Tc = FLOPs / peakFLOPs + Smem / Bmem   (compute + memory bound)
 *   Tw = Sw / Bw                      (weight/gradient movement)
 * with every denominator derated by a hardware-efficiency assumption
 * (70% in the paper), and Ttotal = Td + Tc + Tw under the default
 * non-overlap assumption (or max{Td, Tc, Tw} under ideal overlap,
 * Sec V-B).
 *
 * The weight-movement medium follows Table II: 1wng charges PCIe;
 * PS/Worker charges Ethernet then PCIe serially (this is what makes
 * Eq 3 yield exactly 21x against AllReduce-Local's NVLink);
 * AllReduce-Local charges NVLink; AllReduce-Cluster charges Ethernet
 * then NVLink; PEARL charges NVLink.
 */

#ifndef PAICHAR_CORE_ANALYTICAL_MODEL_H
#define PAICHAR_CORE_ANALYTICAL_MODEL_H

#include <optional>
#include <string>

#include "hw/hardware_config.h"
#include "workload/model_zoo.h"
#include "workload/training_job.h"

namespace paichar::core {

/** The four execution-time components of Fig 7/8. */
enum class Component
{
    DataIo,
    ComputeFlops,
    ComputeMemory,
    WeightTraffic,
};

/** All components in presentation order. */
inline constexpr Component kAllComponents[] = {
    Component::DataIo,
    Component::WeightTraffic,
    Component::ComputeFlops,
    Component::ComputeMemory,
};

/** Printable component name. */
std::string toString(Component c);

/** Hardware components time can be attributed to (Fig 8a). */
enum class HwComponent
{
    GpuFlops,
    GpuMemory,
    Pcie,
    Ethernet,
    NvLink,
};

inline constexpr HwComponent kAllHwComponents[] = {
    HwComponent::GpuFlops, HwComponent::GpuMemory, HwComponent::Pcie,
    HwComponent::Ethernet, HwComponent::NvLink,
};

/** Printable hardware-component name. */
std::string toString(HwComponent h);

/** How computation and communication combine into step time. */
enum class OverlapMode
{
    /** Ttotal = Td + Tc + Tw (the paper's default). */
    NonOverlap,
    /** Ttotal = max{Td, Tc, Tw} (Sec V-B sensitivity analysis). */
    IdealOverlap,
};

/**
 * Separate derating knobs for computation (GPU FLOPs + memory) and
 * communication (PCIe/Ethernet/NVLink), the two axes varied in the
 * Fig 15 sensitivity study. The paper's default is 0.7 for both.
 */
struct EfficiencyAssumption
{
    double computation = 0.7;
    double communication = 0.7;
};

/** Predicted step-time decomposition. */
struct TimeBreakdown
{
    double t_data = 0.0;       ///< Td
    double t_comp_flops = 0.0; ///< compute-bound part of Tc
    double t_comp_mem = 0.0;   ///< memory-bound part of Tc
    double t_weight = 0.0;     ///< Tw
    /** Tw split for hardware attribution (t_weight = sum of legs). */
    double t_weight_ethernet = 0.0;
    double t_weight_pcie = 0.0;
    double t_weight_nvlink = 0.0;

    /** Tc = compute-bound + memory-bound. */
    double compute() const { return t_comp_flops + t_comp_mem; }

    /** Step time under the given overlap assumption. */
    double total(OverlapMode mode = OverlapMode::NonOverlap) const;

    /** Component time. */
    double time(Component c) const;

    /**
     * Component share of the step time; components always sum against
     * the non-overlap total so shares add to 1 (the paper normalizes
     * percentages this way even in the overlap study).
     */
    double fraction(Component c) const;

    /** Time attributed to one hardware component (Fig 8a). */
    double hwTime(HwComponent h) const;

    /** Hardware-component share of the non-overlap total. */
    double hwFraction(HwComponent h) const;
};

/**
 * The analytical model: cluster spec + efficiency assumption in,
 * per-job time breakdowns out.
 */
class AnalyticalModel
{
  public:
    /** Model with the paper's uniform 70% assumption. */
    explicit AnalyticalModel(const hw::ClusterSpec &spec);

    /** Model with explicit computation/communication efficiencies. */
    AnalyticalModel(const hw::ClusterSpec &spec,
                    const EfficiencyAssumption &eff);

    /** The hardware configuration in use. */
    const hw::ClusterSpec &spec() const { return spec_; }

    /** The derating assumption in use. */
    const EfficiencyAssumption &efficiency() const { return eff_; }

    /**
     * Predict the per-step time breakdown of one cNode of @p job.
     *
     * Data I/O and (for 1wng) PCIe weight traffic are charged with
     * PCIe sharing: replicas co-located on one server compete for the
     * host link (the effect that slows data I/O after projection to
     * AllReduce-Local, Sec III-C1).
     */
    TimeBreakdown breakdown(const workload::TrainingJob &job) const;

    /** Step time shortcut: breakdown(job).total(mode). */
    double stepTime(const workload::TrainingJob &job,
                    OverlapMode mode = OverlapMode::NonOverlap) const;

    /**
     * Job throughput in samples per unit time (Eq 2):
     * #cNode / Ttotal * batch_size.
     */
    double throughput(const workload::TrainingJob &job,
                      OverlapMode mode = OverlapMode::NonOverlap) const;

    /** Replicas sharing one server's PCIe root for this job. */
    static int colocatedReplicas(const workload::TrainingJob &job,
                                 const hw::ClusterSpec &spec);

    /**
     * Enable/disable the PCIe-sharing penalty (default on). The
     * cluster-level analyses of Sec III keep it on (it drives the
     * Fig 9/10 bottleneck shift); per-replica case-study estimates
     * (Fig 12) turn it off, as Table V's memcpy volumes are per-GPU
     * measurements whose contention is already folded into the
     * Table VI PCIe efficiencies.
     */
    void setPcieContention(bool enabled) { pcie_contention_ = enabled; }

    /** Whether the PCIe-sharing penalty is applied. */
    bool pcieContention() const { return pcie_contention_; }

    /**
     * Model ring-AllReduce traffic explicitly (default off). The
     * paper charges AllReduce jobs a plain Sw / B_NVLink; a ring of n
     * GPUs actually moves 2(n-1)/n * Sw per link. Off reproduces the
     * paper's numbers (incl. Eq 3's 21x); on narrows the gap to the
     * event-driven testbed (see bench_ablation_model_fidelity).
     */
    void setRingAware(bool enabled) { ring_aware_ = enabled; }

    /** Whether ring traffic factors are applied. */
    bool ringAware() const { return ring_aware_; }

    /**
     * Derate each hardware component by a measured Table VI profile
     * instead of the two-knob computation/communication assumption:
     * GPU FLOPs, GPU memory, PCIe and network (Ethernet + NVLink)
     * each get their own efficiency. Used by the planner's analytical
     * cost model so its ranking tracks the testbed, which always
     * runs on the measured profile.
     */
    void
    setComponentEfficiency(const workload::EfficiencyProfile &eff)
    {
        component_eff_ = eff;
    }

    /** Back to the uniform computation/communication knobs. */
    void clearComponentEfficiency() { component_eff_.reset(); }

  private:
    hw::ClusterSpec spec_;
    EfficiencyAssumption eff_;
    std::optional<workload::EfficiencyProfile> component_eff_;
    bool pcie_contention_ = true;
    bool ring_aware_ = false;
};

} // namespace paichar::core

#endif // PAICHAR_CORE_ANALYTICAL_MODEL_H
