/**
 * @file
 * Architecture projection (Sec III-C1, Figs 9/10/16): estimate how a
 * job would perform if ported from its current architecture to
 * AllReduce-Local or AllReduce-Cluster.
 *
 * Mapping rules from the paper:
 *  - to AllReduce-Local: a job can use at most one server's GPUs, so
 *    #cNode is clamped to 8 (gpus_per_server); jobs with <= 8 cNodes
 *    keep their count.
 *  - to AllReduce-Cluster: #cNode is retained.
 * Weight traffic then moves to the new medium (NVLink, or Ethernet &
 * NVLink), while data I/O picks up PCIe sharing across the co-located
 * replicas -- the two opposing effects that decide whether a given job
 * wins or loses.
 */

#ifndef PAICHAR_CORE_PROJECTION_H
#define PAICHAR_CORE_PROJECTION_H

#include <vector>

#include "core/analytical_model.h"
#include "runtime/parallel.h"
#include "workload/training_job.h"

namespace paichar::core {

/** Outcome of porting one job to a target architecture. */
struct ProjectionResult
{
    /** The remapped job (new arch, possibly fewer cNodes). */
    workload::TrainingJob projected;
    /** Step time before / after. */
    double old_step_time = 0.0;
    double new_step_time = 0.0;
    /** Single-cNode speedup: old step time / new step time. */
    double single_node_speedup = 1.0;
    /**
     * Overall-throughput speedup per Eq 2; differs from the
     * single-node speedup when the cNode count changed.
     */
    double throughput_speedup = 1.0;
};

/** Projects jobs onto alternative system architectures. */
class ArchitectureProjector
{
  public:
    /**
     * @param model Analytical model (hardware + efficiency) used to
     *              evaluate both the original and projected jobs.
     */
    explicit ArchitectureProjector(const AnalyticalModel &model)
        : model_(model)
    {
    }

    /**
     * Remap a job's meta information to @p target (no evaluation):
     * applies the cNode clamping rule and drops PS nodes.
     */
    workload::TrainingJob remap(const workload::TrainingJob &job,
                                workload::ArchType target) const;

    /** Remap and evaluate under the given overlap assumption. */
    ProjectionResult
    project(const workload::TrainingJob &job, workload::ArchType target,
            OverlapMode mode = OverlapMode::NonOverlap) const;

    /**
     * Project a whole population, fanning out over @p pool (nullptr =
     * serial). Results are slot-by-index: out[i] corresponds to
     * jobs[i] for every thread count.
     */
    std::vector<ProjectionResult>
    projectAll(const std::vector<workload::TrainingJob> &jobs,
               workload::ArchType target,
               OverlapMode mode = OverlapMode::NonOverlap,
               runtime::ThreadPool *pool = runtime::globalPool()) const;

  private:
    const AnalyticalModel &model_;
};

} // namespace paichar::core

#endif // PAICHAR_CORE_PROJECTION_H
