#include "arch_feasibility.h"

#include <algorithm>
#include <cassert>

namespace paichar::core {

using workload::ArchType;
using workload::WorkloadFeatures;

Placement
resolvePlacement(const WorkloadFeatures &f, ArchType arch,
                 int requested_cnodes, const hw::ServerSpec &server,
                 double gpu_memory_bytes, int partition_ways)
{
    assert(requested_cnodes >= 1);
    assert(partition_ways >= 1);
    assert(gpu_memory_bytes > 0.0);

    Placement p;
    p.arch = arch;
    p.num_cnodes = requested_cnodes;

    const int ways = partition_ways;
    if (ways > 1) {
        // Shard groups exchange activations across a server's NVLink
        // mesh every step; they cannot straddle servers, and 1w1g /
        // PS/Worker place one GPU per worker by definition.
        if (arch == ArchType::OneWorkerOneGpu ||
            arch == ArchType::PsWorker) {
            p.reason = "architecture cannot host model shards";
            return p;
        }
        if (!server.has_nvlink) {
            p.reason = "model partitioning requires NVLink servers";
            return p;
        }
        if (ways > server.gpus_per_server) {
            p.reason = "partition degree exceeds one server's GPUs";
            return p;
        }
    }

    int n = requested_cnodes;
    double per_gpu = 0.0;
    switch (arch) {
      case ArchType::OneWorkerOneGpu:
        n = 1;
        per_gpu = f.weightBytes();
        break;
      case ArchType::OneWorkerMultiGpu:
        n = std::min(n, server.gpus_per_server);
        // Parameters live in host memory; GPUs hold working copies of
        // the dense part only.
        per_gpu = f.dense_weight_bytes;
        break;
      case ArchType::PsWorker:
        // Parameters are partitioned across PS hosts; a worker GPU
        // holds the dense replica plus the rows of the current batch.
        per_gpu = f.dense_weight_bytes + f.comm_bytes;
        break;
      case ArchType::AllReduceLocal:
        n = std::min(n, server.gpus_per_server);
        per_gpu = f.weightBytes();
        break;
      case ArchType::AllReduceCluster:
        per_gpu = f.weightBytes();
        break;
      case ArchType::Pearl:
        n = std::min(n, server.gpus_per_server);
        per_gpu = f.dense_weight_bytes +
                  f.embedding_weight_bytes / std::max(1, n);
        break;
    }

    if (ways > 1) {
        // Each replica becomes a shard group of `ways` GPUs holding
        // 1/ways of the replicated parameters each (PEARL's embedding
        // shards are already per-GPU and stay untouched).
        n = std::max(ways, n / ways * ways);
        if (arch == ArchType::Pearl) {
            per_gpu = f.dense_weight_bytes / ways +
                      f.embedding_weight_bytes / std::max(1, n);
        } else {
            per_gpu /= ways;
        }
    }
    p.num_cnodes = n;
    p.per_gpu_weight_bytes = per_gpu;

    bool needs_nvlink = arch == ArchType::AllReduceLocal ||
                        arch == ArchType::AllReduceCluster ||
                        arch == ArchType::Pearl;
    if (needs_nvlink && !server.has_nvlink) {
        p.reason = "requires NVLink servers";
        return p;
    }
    if (per_gpu > gpu_memory_bytes) {
        p.reason = "weights exceed per-GPU memory budget";
        return p;
    }
    p.feasible = true;
    return p;
}

} // namespace paichar::core
