/**
 * @file
 * Terminal rendering of the paper's figure types: CDF curves and
 * horizontal stacked/plain bar charts. Benches use these so that each
 * figure reproduction is human-checkable directly from stdout.
 */

#ifndef PAICHAR_STATS_ASCII_PLOT_H
#define PAICHAR_STATS_ASCII_PLOT_H

#include <string>
#include <vector>

#include "cdf.h"

namespace paichar::stats {

/** One named series for a CDF plot. */
struct CdfSeries
{
    std::string name;
    const WeightedCdf *cdf = nullptr; // non-owning; must outlive the plot
};

/**
 * Render several CDFs on one character grid.
 *
 * @param series    Series to draw; each gets its own glyph.
 * @param width     Plot width in characters (x axis resolution).
 * @param height    Plot height in rows (y axis resolution).
 * @param log_x     Draw the x axis on a log10 scale (all samples must
 *                  then be positive).
 * @param x_label   Axis caption printed under the plot.
 */
std::string renderCdfPlot(const std::vector<CdfSeries> &series,
                          size_t width = 64, size_t height = 16,
                          bool log_x = false,
                          const std::string &x_label = "");

/** One labelled horizontal bar composed of named segments. */
struct StackedBar
{
    std::string label;
    /** (segment name, value); values must be non-negative. */
    std::vector<std::pair<std::string, double>> segments;
};

/**
 * Render horizontal stacked bars (the paper's Fig 7/12/13 style).
 * Each segment type is assigned a repeating glyph; a legend is
 * appended. If @p normalize is true every bar is scaled to 100%.
 */
std::string renderStackedBars(const std::vector<StackedBar> &bars,
                              size_t width = 60, bool normalize = true);

/**
 * Render a simple horizontal bar chart of (label, value) pairs,
 * scaled so the largest value spans @p width characters.
 */
std::string renderBars(
    const std::vector<std::pair<std::string, double>> &bars,
    size_t width = 50, const std::string &unit = "");

/**
 * Render one time series as an ASCII scatter plot: x is time (linear
 * from first to last point), y is value, axis labels via the same
 * grow-to-fit formatters as renderCdfPlot. Points that share a column
 * each plot their own row (a vertical streak shows within-column
 * spread). Used by `paichar obs timeline --plot`.
 *
 * @param points  (time, value) pairs, time non-decreasing; must be
 *                non-empty.
 * @param width   Plot width in characters.
 * @param height  Plot height in rows.
 * @param x_label Axis caption printed under the plot.
 */
std::string renderSeriesPlot(
    const std::vector<std::pair<double, double>> &points,
    size_t width = 64, size_t height = 16,
    const std::string &x_label = "");

} // namespace paichar::stats

#endif // PAICHAR_STATS_ASCII_PLOT_H
