#include "summary.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace paichar::stats {

double
mean(const std::vector<double> &xs)
{
    assert(!xs.empty());
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
weightedMean(const std::vector<double> &xs,
             const std::vector<double> &weights)
{
    assert(xs.size() == weights.size());
    assert(!xs.empty());
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        assert(weights[i] >= 0.0);
        num += xs[i] * weights[i];
        den += weights[i];
    }
    assert(den > 0.0);
    return num / den;
}

double
stddev(const std::vector<double> &xs)
{
    assert(!xs.empty());
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
geoMean(const std::vector<double> &xs)
{
    assert(!xs.empty());
    double acc = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
fracAbove(const std::vector<double> &xs, double threshold)
{
    if (xs.empty())
        return 0.0;
    size_t n = static_cast<size_t>(
        std::count_if(xs.begin(), xs.end(),
                      [threshold](double x) { return x > threshold; }));
    return static_cast<double>(n) / static_cast<double>(xs.size());
}

double
relDiff(double a, double b)
{
    assert(b != 0.0);
    return (a - b) / b;
}

double
clamp(double x, double lo, double hi)
{
    assert(lo <= hi);
    return std::min(hi, std::max(lo, x));
}

} // namespace paichar::stats
