#include "arrival.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace paichar::stats {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** Largest double strictly below 1.0: the clamp target for u. */
constexpr double kMaxUniform = 0x1.fffffffffffffp-1;

[[noreturn]] void
badConfig(const char *what)
{
    throw std::invalid_argument(std::string("ArrivalStream: ") +
                                what);
}

void
validate(const ArrivalConfig &cfg)
{
    if (!(cfg.qps > 0.0) || !std::isfinite(cfg.qps))
        badConfig("qps must be positive and finite");
    if (cfg.kind == ArrivalKind::Diurnal) {
        if (!(cfg.diurnal_amplitude >= 0.0) ||
            cfg.diurnal_amplitude >= 1.0)
            badConfig("diurnal amplitude must be in [0, 1)");
        if (!(cfg.diurnal_period > 0.0) ||
            !std::isfinite(cfg.diurnal_period))
            badConfig("diurnal period must be positive and finite");
    }
    if (cfg.kind == ArrivalKind::Bursty) {
        if (!(cfg.burst_multiplier >= 1.0) ||
            !std::isfinite(cfg.burst_multiplier))
            badConfig("burst multiplier must be >= 1 and finite");
        if (!(cfg.burst_fraction > 0.0) ||
            !(cfg.burst_fraction < 1.0))
            badConfig("burst fraction must be in (0, 1)");
        if (!(cfg.burst_mean_s > 0.0) ||
            !std::isfinite(cfg.burst_mean_s))
            badConfig("burst mean duration must be positive and "
                      "finite");
    }
}

/** Instantaneous diurnal rate at time @p t. */
double
diurnalRate(const ArrivalConfig &cfg, double t)
{
    return cfg.qps *
           (1.0 + cfg.diurnal_amplitude *
                      std::sin(kTwoPi * t / cfg.diurnal_period -
                               kTwoPi / 4.0));
}

} // namespace

const char *
toString(ArrivalKind kind)
{
    switch (kind) {
    case ArrivalKind::Constant:
        return "constant";
    case ArrivalKind::Diurnal:
        return "diurnal";
    case ArrivalKind::Bursty:
        return "bursty";
    }
    return "?";
}

std::optional<ArrivalKind>
arrivalKindFromString(const std::string &s)
{
    if (s == "constant")
        return ArrivalKind::Constant;
    if (s == "diurnal")
        return ArrivalKind::Diurnal;
    if (s == "bursty")
        return ArrivalKind::Bursty;
    return std::nullopt;
}

double
expFromUniform(double u, double rate)
{
    // Rng::uniform() is half-open ([0, 1)), so the clamp is
    // unreachable from our own generator; it guards against a future
    // RNG (or caller) handing in a closed-interval draw, which would
    // otherwise produce log(0) = an infinite gap.
    if (u >= 1.0) {
        static obs::Counter &clamped =
            obs::counter("stats.exp_clamped");
        clamped.add();
        u = kMaxUniform;
    }
    return -std::log1p(-u) / rate;
}

double
sampleExp(Rng &rng, double rate)
{
    return expFromUniform(rng.uniform(), rate);
}

ArrivalStream::ArrivalStream(const ArrivalConfig &cfg, uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    validate(cfg_);
    if (cfg_.kind == ArrivalKind::Bursty) {
        // Baseline rate derated so the long-run mean stays at qps:
        // qps = base * (1 - f) + base * m * f.
        base_rate_ =
            cfg_.qps / (1.0 + cfg_.burst_fraction *
                                  (cfg_.burst_multiplier - 1.0));
        // Start in the baseline state; mean baseline sojourn is set
        // so the stationary burst fraction comes out at f.
        double normal_mean = cfg_.burst_mean_s *
                             (1.0 - cfg_.burst_fraction) /
                             cfg_.burst_fraction;
        next_switch_ = sampleExp(rng_, 1.0 / normal_mean);
    }
}

double
ArrivalStream::peakQps() const
{
    switch (cfg_.kind) {
    case ArrivalKind::Constant:
        return cfg_.qps;
    case ArrivalKind::Diurnal:
        return cfg_.qps * (1.0 + cfg_.diurnal_amplitude);
    case ArrivalKind::Bursty:
        return base_rate_ * cfg_.burst_multiplier;
    }
    return cfg_.qps;
}

double
ArrivalStream::next()
{
    switch (cfg_.kind) {
    case ArrivalKind::Constant:
        t_ += sampleExp(rng_, cfg_.qps);
        return t_;

    case ArrivalKind::Diurnal: {
        // Lewis-Shedler thinning against the peak rate.
        double rate_max = peakQps();
        for (;;) {
            t_ += sampleExp(rng_, rate_max);
            if (rng_.uniform() * rate_max <= diurnalRate(cfg_, t_))
                return t_;
        }
    }

    case ArrivalKind::Bursty: {
        // Exponential sojourns are memoryless, so the candidate gap
        // can simply be redrawn after each state switch.
        for (;;) {
            double rate = in_burst_
                              ? base_rate_ * cfg_.burst_multiplier
                              : base_rate_;
            double gap = sampleExp(rng_, rate);
            if (t_ + gap <= next_switch_) {
                t_ += gap;
                return t_;
            }
            t_ = next_switch_;
            in_burst_ = !in_burst_;
            double mean_sojourn =
                in_burst_ ? cfg_.burst_mean_s
                          : cfg_.burst_mean_s *
                                (1.0 - cfg_.burst_fraction) /
                                cfg_.burst_fraction;
            next_switch_ = t_ + sampleExp(rng_, 1.0 / mean_sojourn);
        }
    }
    }
    return t_;
}

std::vector<double>
generateArrivals(const ArrivalConfig &cfg, int64_t n, uint64_t seed)
{
    if (n < 0)
        badConfig("arrival count must be >= 0");
    ArrivalStream stream(cfg, seed);
    std::vector<double> out(static_cast<size_t>(n));
    for (double &t : out)
        t = stream.next();
    return out;
}

} // namespace paichar::stats
