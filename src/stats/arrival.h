/**
 * @file
 * Open-loop arrival processes for the serving-fleet simulator.
 *
 * Serving load is open-loop: requests arrive on their own clock, they
 * do not wait for earlier requests to finish. Three generator shapes
 * cover the GPU-datacenter workloads characterized by Hu et al.
 * (arXiv:2109.01313, see PAPERS.md):
 *
 *  - Constant: a homogeneous Poisson process at a fixed rate — the
 *    classic single-rate probe, and exactly the arrival stream the
 *    seed ServingSimulator used.
 *  - Diurnal: an inhomogeneous Poisson process whose rate follows a
 *    sinusoid (trough at t = 0, one full cycle per period), sampled
 *    by Lewis-Shedler thinning. Models the day/night swing.
 *  - Bursty: a two-state Markov-modulated Poisson process (baseline
 *    and burst states with exponential sojourns). Models the
 *    heavy-tailed demand spikes of shared inference clusters.
 *
 * Streams are seed-pure: a stream is fully determined by its config
 * and seed, independent of every other stream, so multi-model fleets
 * replay byte-identically under any interleaving.
 *
 * The exponential sampler documents and enforces the RNG contract:
 * Rng::uniform() is *half-open* ([0, 1)), so log1p(-u) is always
 * finite. Should a future RNG ever return 1.0, the sampler clamps the
 * draw to the largest representable value below 1 instead of emitting
 * an infinite inter-arrival gap, and counts the clamp in the
 * `stats.exp_clamped` obs counter so silent distribution damage is
 * visible in --metrics.
 */

#ifndef PAICHAR_STATS_ARRIVAL_H
#define PAICHAR_STATS_ARRIVAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace paichar::stats {

/** Arrival-process family. */
enum class ArrivalKind
{
    Constant,
    Diurnal,
    Bursty,
};

/** CLI spelling ("constant" | "diurnal" | "bursty"). */
const char *toString(ArrivalKind kind);
std::optional<ArrivalKind> arrivalKindFromString(const std::string &s);

/** Shape of one open-loop arrival stream. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Constant;

    /** Long-run mean arrival rate, requests per second (> 0). */
    double qps = 1.0;

    /**
     * Diurnal swing: rate(t) = qps * (1 + amplitude * sin(2*pi*t /
     * period - pi/2)), i.e. the cycle starts at the trough. Amplitude
     * in [0, 1) keeps the rate strictly positive.
     */
    double diurnal_amplitude = 0.5;
    /** Diurnal cycle length in seconds (a compressed "day"). */
    double diurnal_period = 240.0;

    /**
     * Bursty (MMPP-2): the burst state multiplies the baseline rate
     * by @p burst_multiplier (>= 1); the process spends
     * @p burst_fraction of its time bursting (in (0, 1)), with mean
     * burst sojourn @p burst_mean_s seconds. The baseline rate is
     * derated so the long-run mean stays at @p qps.
     */
    double burst_multiplier = 4.0;
    double burst_fraction = 0.1;
    double burst_mean_s = 5.0;
};

/**
 * Exponential variate with the given rate from one uniform draw.
 * Clamps a (contract-violating) u >= 1 draw to just below 1 and
 * counts it in the `stats.exp_clamped` obs counter; the returned gap
 * is always finite. Exposed for the property tests.
 */
double expFromUniform(double u, double rate);

/** One `expFromUniform` draw from @p rng (always finite). */
double sampleExp(Rng &rng, double rate);

/**
 * A lazy, seed-pure arrival-time generator.
 *
 * next() returns strictly increasing absolute arrival times (seconds
 * from 0). Construction validates the config and throws
 * std::invalid_argument (release builds included) on a non-positive
 * or non-finite rate, amplitude outside [0, 1), non-positive period,
 * multiplier < 1, fraction outside (0, 1), or non-positive burst
 * sojourn.
 */
class ArrivalStream
{
  public:
    ArrivalStream(const ArrivalConfig &cfg, uint64_t seed);

    /** Next absolute arrival time. */
    double next();

    /** Long-run mean rate (the configured qps). */
    double meanQps() const { return cfg_.qps; }

    /** Peak instantaneous rate of the process. */
    double peakQps() const;

    const ArrivalConfig &config() const { return cfg_; }

  private:
    ArrivalConfig cfg_;
    Rng rng_;
    double t_ = 0.0;
    // Bursty-state bookkeeping.
    bool in_burst_ = false;
    double next_switch_ = 0.0;
    double base_rate_ = 0.0;
};

/**
 * Materialize the first @p n arrivals of a stream (convenience for
 * tests and the single-server simulator).
 */
std::vector<double> generateArrivals(const ArrivalConfig &cfg,
                                     int64_t n, uint64_t seed);

} // namespace paichar::stats

#endif // PAICHAR_STATS_ARRIVAL_H
