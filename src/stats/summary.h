/**
 * @file
 * Small numeric summary helpers shared by analyses and benches.
 */

#ifndef PAICHAR_STATS_SUMMARY_H
#define PAICHAR_STATS_SUMMARY_H

#include <cstddef>
#include <vector>

namespace paichar::stats {

/** Arithmetic mean. Requires non-empty input. */
double mean(const std::vector<double> &xs);

/** Weighted mean; weights non-negative, not all zero. */
double weightedMean(const std::vector<double> &xs,
                    const std::vector<double> &weights);

/** Population standard deviation. Requires non-empty input. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geoMean(const std::vector<double> &xs);

/**
 * Fraction of samples satisfying a predicate expressed as a threshold:
 * P(x > threshold) over the sample vector (unweighted).
 */
double fracAbove(const std::vector<double> &xs, double threshold);

/** Relative difference (a - b) / b; b must be non-zero. */
double relDiff(double a, double b);

/** Clamp x into [lo, hi]. */
double clamp(double x, double lo, double hi);

} // namespace paichar::stats

#endif // PAICHAR_STATS_SUMMARY_H
