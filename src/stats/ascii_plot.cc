#include "ascii_plot.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "table.h"

namespace paichar::stats {

namespace {

const char kSeriesGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

const char kSegmentGlyphs[] = {'#', '=', '.', ':', '+', 'o', '*', '~'};

} // namespace

std::string
renderCdfPlot(const std::vector<CdfSeries> &series, size_t width,
              size_t height, bool log_x, const std::string &x_label)
{
    assert(!series.empty());
    assert(width >= 8 && height >= 4);

    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto &s : series) {
        assert(s.cdf && !s.cdf->empty());
        lo = std::min(lo, s.cdf->min());
        hi = std::max(hi, s.cdf->max());
    }
    if (log_x) {
        assert(lo > 0.0);
        lo = std::log10(lo);
        hi = std::log10(hi);
    }
    if (hi <= lo)
        hi = lo + 1.0;

    std::vector<std::string> grid(height, std::string(width, ' '));
    for (size_t si = 0; si < series.size(); ++si) {
        char glyph = kSeriesGlyphs[si % sizeof(kSeriesGlyphs)];
        const WeightedCdf &cdf = *series[si].cdf;
        for (size_t col = 0; col < width; ++col) {
            double x = lo + (hi - lo) * static_cast<double>(col) /
                                static_cast<double>(width - 1);
            if (log_x)
                x = std::pow(10.0, x);
            double p = cdf.probAtOrBelow(x);
            auto row = static_cast<size_t>(
                std::min<double>(height - 1,
                                 std::floor(p * static_cast<double>(height))));
            // Row 0 is the top of the plot (p = 1).
            grid[height - 1 - row][col] = glyph;
        }
    }

    // Labels go through the allocating stats formatters (fmt/fmtG),
    // never fixed char buffers, so extreme axis magnitudes render in
    // full instead of truncating.
    std::ostringstream os;
    for (size_t r = 0; r < height; ++r) {
        double p_top = 1.0 - static_cast<double>(r) /
                                 static_cast<double>(height);
        std::string axis = fmt(p_top, 2);
        if (axis.size() < 4)
            axis.insert(0, 4 - axis.size(), ' ');
        os << axis << " |" << grid[r] << '\n';
    }
    os << "     +" << std::string(width, '-') << '\n';
    {
        double lo_v = log_x ? std::pow(10.0, lo) : lo;
        double hi_v = log_x ? std::pow(10.0, hi) : hi;
        std::string lab = fmtG(lo_v, 3);
        std::string right = fmtG(hi_v, 3);
        size_t pad = width > lab.size() + right.size()
                         ? width - lab.size() - right.size()
                         : 1;
        os << "      " << lab << std::string(pad, ' ') << right;
        if (log_x)
            os << "  (log scale)";
        if (!x_label.empty())
            os << "  [" << x_label << "]";
        os << '\n';
    }
    os << "      legend:";
    for (size_t si = 0; si < series.size(); ++si) {
        os << ' ' << kSeriesGlyphs[si % sizeof(kSeriesGlyphs)] << '='
           << series[si].name;
    }
    os << '\n';
    return os.str();
}

std::string
renderStackedBars(const std::vector<StackedBar> &bars, size_t width,
                  bool normalize)
{
    assert(!bars.empty());

    // Collect the distinct segment names in first-seen order.
    std::vector<std::string> seg_names;
    for (const auto &bar : bars) {
        for (const auto &[name, value] : bar.segments) {
            (void)value;
            if (std::find(seg_names.begin(), seg_names.end(), name) ==
                seg_names.end()) {
                seg_names.push_back(name);
            }
        }
    }

    size_t label_w = 0;
    double max_total = 0.0;
    for (const auto &bar : bars) {
        label_w = std::max(label_w, bar.label.size());
        double total = 0.0;
        for (const auto &[name, value] : bar.segments) {
            (void)name;
            assert(value >= 0.0);
            total += value;
        }
        max_total = std::max(max_total, total);
    }
    if (max_total <= 0.0)
        max_total = 1.0;

    std::ostringstream os;
    for (const auto &bar : bars) {
        double total = 0.0;
        for (const auto &[name, value] : bar.segments) {
            (void)name;
            total += value;
        }
        double scale_base = normalize ? total : max_total;
        if (scale_base <= 0.0)
            scale_base = 1.0;
        os << bar.label << std::string(label_w - bar.label.size(), ' ')
           << " |";
        size_t used = 0;
        for (const auto &[name, value] : bar.segments) {
            auto seg_idx = static_cast<size_t>(
                std::find(seg_names.begin(), seg_names.end(), name) -
                seg_names.begin());
            char glyph = kSegmentGlyphs[seg_idx % sizeof(kSegmentGlyphs)];
            auto cells = static_cast<size_t>(
                std::round(value / scale_base * static_cast<double>(width)));
            cells = std::min(cells, width - std::min(used, width));
            os << std::string(cells, glyph);
            used += cells;
        }
        os << '|';
        if (normalize) {
            os << ' ';
            for (size_t i = 0; i < bar.segments.size(); ++i) {
                if (i)
                    os << '/';
                double frac =
                    total > 0.0 ? bar.segments[i].second / total : 0.0;
                os << fmtPct(frac, 0);
            }
        } else {
            os << ' ' << fmt(total, 3);
        }
        os << '\n';
    }
    os << "legend:";
    for (size_t i = 0; i < seg_names.size(); ++i) {
        os << ' ' << kSegmentGlyphs[i % sizeof(kSegmentGlyphs)] << '='
           << seg_names[i];
    }
    os << '\n';
    return os.str();
}

std::string
renderSeriesPlot(const std::vector<std::pair<double, double>> &points,
                 size_t width, size_t height,
                 const std::string &x_label)
{
    assert(!points.empty());
    assert(width >= 8 && height >= 4);

    double x_lo = points.front().first;
    double x_hi = points.back().first;
    if (x_hi <= x_lo)
        x_hi = x_lo + 1.0;
    double y_lo = std::numeric_limits<double>::infinity();
    double y_hi = -std::numeric_limits<double>::infinity();
    for (const auto &[x, y] : points) {
        (void)x;
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
    }
    if (y_hi <= y_lo)
        y_hi = y_lo + 1.0;

    std::vector<std::string> grid(height, std::string(width, ' '));
    for (const auto &[x, y] : points) {
        auto col = static_cast<size_t>(std::min<double>(
            static_cast<double>(width - 1),
            std::floor((x - x_lo) / (x_hi - x_lo) *
                       static_cast<double>(width))));
        auto row = static_cast<size_t>(std::min<double>(
            static_cast<double>(height - 1),
            std::floor((y - y_lo) / (y_hi - y_lo) *
                       static_cast<double>(height))));
        // Row 0 is the top of the plot (y = max).
        grid[height - 1 - row][col] = '*';
    }

    // Left axis: top / mid / bottom y values, grow-to-fit like
    // renderCdfPlot's labels.
    std::string top = fmtG(y_hi, 3);
    std::string mid = fmtG((y_lo + y_hi) / 2.0, 3);
    std::string bot = fmtG(y_lo, 3);
    size_t axis_w =
        std::max({top.size(), mid.size(), bot.size(), size_t{4}});
    auto pad = [&](const std::string &s) {
        return std::string(axis_w - s.size(), ' ') + s;
    };

    std::ostringstream os;
    for (size_t r = 0; r < height; ++r) {
        std::string axis(axis_w, ' ');
        if (r == 0)
            axis = pad(top);
        else if (r == height / 2)
            axis = pad(mid);
        else if (r == height - 1)
            axis = pad(bot);
        os << axis << " |" << grid[r] << '\n';
    }
    os << std::string(axis_w + 1, ' ') << '+'
       << std::string(width, '-') << '\n';
    {
        std::string lab = fmtG(x_lo, 3);
        std::string right = fmtG(x_hi, 3);
        size_t gap = width > lab.size() + right.size()
                         ? width - lab.size() - right.size()
                         : 1;
        os << std::string(axis_w + 2, ' ') << lab
           << std::string(gap, ' ') << right;
        if (!x_label.empty())
            os << "  [" << x_label << "]";
        os << '\n';
    }
    return os.str();
}

std::string
renderBars(const std::vector<std::pair<std::string, double>> &bars,
           size_t width, const std::string &unit)
{
    assert(!bars.empty());
    size_t label_w = 0;
    double max_v = 0.0;
    for (const auto &[label, v] : bars) {
        label_w = std::max(label_w, label.size());
        max_v = std::max(max_v, v);
    }
    if (max_v <= 0.0)
        max_v = 1.0;

    std::ostringstream os;
    for (const auto &[label, v] : bars) {
        auto cells = static_cast<size_t>(
            std::round(v / max_v * static_cast<double>(width)));
        os << label << std::string(label_w - label.size(), ' ') << " |"
           << std::string(cells, '#') << ' ' << fmt(v, 3);
        if (!unit.empty())
            os << ' ' << unit;
        os << '\n';
    }
    return os.str();
}

} // namespace paichar::stats
