#include "rng.h"

#include <cassert>
#include <cmath>

namespace paichar::stats {

uint64_t
Rng::nextU64()
{
    // SplitMix64 (Steele, Lea, Flood; JDK 8).
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    // 53 random bits -> double in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    assert(lo <= hi);
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range requested
        return static_cast<int64_t>(nextU64());
    // Rejection sampling to remove modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::pareto(double x_m, double alpha)
{
    assert(x_m > 0.0 && alpha > 0.0);
    double u = 1.0 - uniform(); // in (0, 1]
    return x_m / std::pow(u, 1.0 / alpha);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::gamma(double shape)
{
    assert(shape > 0.0);
    if (shape < 1.0) {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        double u = 1.0 - uniform(); // (0, 1]
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia & Tsang (2000).
    double d = shape - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        double u = 1.0 - uniform(); // (0, 1]
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

double
Rng::beta(double alpha, double beta)
{
    assert(alpha > 0.0 && beta > 0.0);
    double x = gamma(alpha);
    double y = gamma(beta);
    return x / (x + y);
}

double
Rng::betaMean(double mean, double kappa)
{
    assert(mean > 0.0 && mean < 1.0 && kappa > 0.0);
    return beta(mean * kappa, (1.0 - mean) * kappa);
}

size_t
Rng::categorical(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    assert(total > 0.0);
    double x = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc)
            return i;
    }
    return weights.size() - 1; // floating-point slack
}

Rng
Rng::split()
{
    // The golden-gamma increment of the child stream starts far away.
    return Rng(nextU64() ^ 0x5851f42d4c957f2dULL);
}

} // namespace paichar::stats
