#include "table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace paichar::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back(); // empty row encodes a separator
}

size_t
Table::rowCount() const
{
    return static_cast<size_t>(
        std::count_if(rows_.begin(), rows_.end(),
                      [](const auto &r) { return !r.empty(); }));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderSep = [&](std::ostringstream &os) {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto renderRow = [&](std::ostringstream &os,
                         const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    std::ostringstream os;
    renderSep(os);
    renderRow(os, headers_);
    renderSep(os);
    for (const auto &row : rows_) {
        if (row.empty())
            renderSep(os);
        else
            renderRow(os, row);
    }
    renderSep(os);
    return os.str();
}

namespace {

/**
 * snprintf into a string, retrying with an exact-size allocation when
 * the text outgrows the stack buffer. %f of a magnitude like 1e300
 * runs to 300+ characters; the previous fixed 64-byte buffers
 * silently truncated (and unterminated) such values.
 */
template <typename... Args>
std::string
format(const char *f, Args... args)
{
    char buf[64];
    int n = std::snprintf(buf, sizeof buf, f, args...);
    if (n < 0)
        return std::string();
    if (static_cast<size_t>(n) < sizeof buf)
        return std::string(buf, static_cast<size_t>(n));
    std::string out(static_cast<size_t>(n), '\0');
    std::snprintf(out.data(), out.size() + 1, f, args...);
    return out;
}

} // namespace

std::string
fmt(double v, int precision)
{
    return format("%.*f", precision, v);
}

std::string
fmtPct(double fraction, int precision)
{
    return format("%.*f%%", precision, fraction * 100.0);
}

std::string
fmtG(double v, int significant)
{
    return format("%.*g", significant, v);
}

std::string
fmtBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    double v = bytes;
    while (std::abs(v) >= 1000.0 && u < 4) {
        v /= 1000.0;
        ++u;
    }
    return format("%.3g %s", v, units[u]);
}

std::string
fmtSeconds(double seconds)
{
    double a = std::abs(seconds);
    if (a >= 1.0)
        return format("%.3f s", seconds);
    if (a >= 1e-3)
        return format("%.3f ms", seconds * 1e3);
    return format("%.3f us", seconds * 1e6);
}

} // namespace paichar::stats
