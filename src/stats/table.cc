#include "table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace paichar::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back(); // empty row encodes a separator
}

size_t
Table::rowCount() const
{
    return static_cast<size_t>(
        std::count_if(rows_.begin(), rows_.end(),
                      [](const auto &r) { return !r.empty(); }));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderSep = [&](std::ostringstream &os) {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto renderRow = [&](std::ostringstream &os,
                         const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    std::ostringstream os;
    renderSep(os);
    renderRow(os, headers_);
    renderSep(os);
    for (const auto &row : rows_) {
        if (row.empty())
            renderSep(os);
        else
            renderRow(os, row);
    }
    renderSep(os);
    return os.str();
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
fmtBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    double v = bytes;
    while (std::abs(v) >= 1000.0 && u < 4) {
        v /= 1000.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g %s", v, units[u]);
    return buf;
}

std::string
fmtSeconds(double seconds)
{
    char buf[64];
    double a = std::abs(seconds);
    if (a >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    else if (a >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    return buf;
}

} // namespace paichar::stats
