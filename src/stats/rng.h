/**
 * @file
 * Deterministic random number generation for the whole project.
 *
 * Every stochastic component (trace synthesis, simulator jitter, ...)
 * draws from an Rng seeded explicitly by the caller, so each experiment
 * is reproducible from a single printed seed.
 */

#ifndef PAICHAR_STATS_RNG_H
#define PAICHAR_STATS_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paichar::stats {

/**
 * SplitMix64-based pseudo random number generator.
 *
 * SplitMix64 passes BigCrush, has a trivially small state, and -- unlike
 * std::mt19937 -- produces an identical stream on every platform and
 * standard library, which we rely on for cross-machine reproducibility
 * of the synthetic cluster trace.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller, one value per call). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal variate: exp(N(mu, sigma)).
     *
     * @param mu    Mean of the underlying normal (log-space).
     * @param sigma Standard deviation of the underlying normal.
     */
    double logNormal(double mu, double sigma);

    /**
     * Pareto (type I) variate with scale x_m and shape alpha.
     * Heavy-tailed; used for job-scale distributions.
     */
    double pareto(double x_m, double alpha);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Gamma variate with the given shape and unit scale
     * (Marsaglia-Tsang squeeze method; handles shape < 1 by boosting).
     */
    double gamma(double shape);

    /** Beta(alpha, beta) variate via two gamma draws. */
    double beta(double alpha, double beta);

    /**
     * Beta variate parameterized by mean in (0, 1) and concentration
     * kappa > 0 (alpha = mean * kappa, beta = (1 - mean) * kappa).
     */
    double betaMean(double mean, double kappa);

    /**
     * Sample an index from a discrete distribution.
     *
     * @param weights Non-negative, not all zero; need not be normalized.
     * @return Index in [0, weights.size()).
     */
    size_t categorical(const std::vector<double> &weights);

    /**
     * Derive an independent child generator. Streams of parent and
     * child do not overlap in practice (distinct SplitMix64 orbits).
     */
    Rng split();

  private:
    uint64_t state_;
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace paichar::stats

#endif // PAICHAR_STATS_RNG_H
