#include "cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace paichar::stats {

void
WeightedCdf::add(double value, double weight)
{
    assert(weight >= 0.0);
    assert(std::isfinite(value) && std::isfinite(weight));
    samples_.emplace_back(value, weight);
    total_weight_ += weight;
    sorted_ = false;
}

void
WeightedCdf::ensureSorted() const
{
    if (sorted_)
        return;
    std::sort(samples_.begin(), samples_.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    cum_weight_.resize(samples_.size());
    double acc = 0.0;
    for (size_t i = 0; i < samples_.size(); ++i) {
        acc += samples_[i].second;
        cum_weight_[i] = acc;
    }
    sorted_ = true;
}

double
WeightedCdf::probAtOrBelow(double x) const
{
    assert(!empty());
    ensureSorted();
    // Index of first sample strictly greater than x.
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), x,
        [](double v, const auto &s) { return v < s.first; });
    if (it == samples_.begin())
        return 0.0;
    size_t idx = static_cast<size_t>(it - samples_.begin()) - 1;
    return total_weight_ > 0.0 ? cum_weight_[idx] / total_weight_ : 0.0;
}

double
WeightedCdf::quantile(double q) const
{
    assert(!empty());
    assert(q >= 0.0 && q <= 1.0);
    ensureSorted();
    double target = q * total_weight_;
    auto it = std::lower_bound(cum_weight_.begin(), cum_weight_.end(),
                               target);
    if (it == cum_weight_.end())
        return samples_.back().first;
    return samples_[static_cast<size_t>(it - cum_weight_.begin())].first;
}

double
WeightedCdf::mean() const
{
    assert(!empty());
    double acc = 0.0;
    for (const auto &[v, w] : samples_)
        acc += v * w;
    return total_weight_ > 0.0 ? acc / total_weight_ : 0.0;
}

double
WeightedCdf::min() const
{
    assert(!empty());
    ensureSorted();
    return samples_.front().first;
}

double
WeightedCdf::max() const
{
    assert(!empty());
    ensureSorted();
    return samples_.back().first;
}

std::vector<std::pair<double, double>>
WeightedCdf::curve(size_t n) const
{
    assert(!empty());
    assert(n >= 2);
    ensureSorted();
    double lo = min(), hi = max();
    std::vector<std::pair<double, double>> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double x = lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(n - 1);
        out.emplace_back(x, probAtOrBelow(x));
    }
    return out;
}

} // namespace paichar::stats
