#include "cdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paichar::stats {

namespace {

/**
 * Empty-CDF queries and out-of-domain arguments are real errors in
 * release builds too (a CDF over a filtered job population can
 * legitimately come out empty), so they throw instead of asserting.
 */
[[noreturn]] void
throwEmpty(const char *fn)
{
    throw std::logic_error(std::string("WeightedCdf::") + fn +
                           ": no samples added");
}

} // namespace

void
WeightedCdf::add(double value, double weight)
{
    if (!std::isfinite(value)) {
        throw std::invalid_argument(
            "WeightedCdf::add: value must be finite");
    }
    // The comparison is written to reject NaN weights as well.
    if (!(weight >= 0.0) || !std::isfinite(weight)) {
        throw std::invalid_argument(
            "WeightedCdf::add: weight must be finite and >= 0");
    }
    samples_.emplace_back(value, weight);
    total_weight_ += weight;
    sorted_ = false;
}

void
WeightedCdf::ensureSorted() const
{
    if (sorted_)
        return;
    std::sort(samples_.begin(), samples_.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    cum_weight_.resize(samples_.size());
    double acc = 0.0;
    for (size_t i = 0; i < samples_.size(); ++i) {
        acc += samples_[i].second;
        cum_weight_[i] = acc;
    }
    sorted_ = true;
}

double
WeightedCdf::probAtOrBelow(double x) const
{
    if (empty())
        throwEmpty("probAtOrBelow");
    ensureSorted();
    // Index of first sample strictly greater than x.
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), x,
        [](double v, const auto &s) { return v < s.first; });
    if (it == samples_.begin())
        return 0.0;
    size_t idx = static_cast<size_t>(it - samples_.begin()) - 1;
    return total_weight_ > 0.0 ? cum_weight_[idx] / total_weight_ : 0.0;
}

double
WeightedCdf::quantile(double q) const
{
    if (empty())
        throwEmpty("quantile");
    // Written to reject NaN along with out-of-range q.
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument(
            "WeightedCdf::quantile: q must be in [0, 1]");
    }
    ensureSorted();
    double target = q * total_weight_;
    auto it = std::lower_bound(cum_weight_.begin(), cum_weight_.end(),
                               target);
    if (it == cum_weight_.end())
        return samples_.back().first;
    return samples_[static_cast<size_t>(it - cum_weight_.begin())].first;
}

double
WeightedCdf::mean() const
{
    if (empty())
        throwEmpty("mean");
    double acc = 0.0;
    for (const auto &[v, w] : samples_)
        acc += v * w;
    return total_weight_ > 0.0 ? acc / total_weight_ : 0.0;
}

double
WeightedCdf::min() const
{
    if (empty())
        throwEmpty("min");
    ensureSorted();
    return samples_.front().first;
}

double
WeightedCdf::max() const
{
    if (empty())
        throwEmpty("max");
    ensureSorted();
    return samples_.back().first;
}

std::vector<std::pair<double, double>>
WeightedCdf::curve(size_t n) const
{
    if (empty())
        throwEmpty("curve");
    if (n < 2) {
        throw std::invalid_argument(
            "WeightedCdf::curve: need at least 2 grid points");
    }
    ensureSorted();
    double lo = min(), hi = max();
    std::vector<std::pair<double, double>> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        double x = lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(n - 1);
        out.emplace_back(x, probAtOrBelow(x));
    }
    return out;
}

} // namespace paichar::stats
