/**
 * @file
 * Empirical (optionally weighted) cumulative distribution functions.
 *
 * The paper reports most collective results as CDFs at two aggregation
 * levels: job-level (each job weighs 1) and cNode-level (each job weighs
 * its number of computation nodes). WeightedCdf covers both.
 */

#ifndef PAICHAR_STATS_CDF_H
#define PAICHAR_STATS_CDF_H

#include <cstddef>
#include <string>
#include <vector>

namespace paichar::stats {

/**
 * An empirical weighted CDF over double-valued samples.
 *
 * Samples are added with a weight (default 1.0); queries are valid after
 * at least one sample has been added. All queries are lazily backed by a
 * sort of the sample vector, cached until the next insertion.
 *
 * Error handling is real (exceptions), not assert-only: querying an
 * empty CDF throws std::logic_error, and out-of-domain arguments
 * (non-finite samples, negative/NaN weights, q outside [0, 1], curve
 * grids under 2 points) throw std::invalid_argument -- in release
 * builds too.
 */
class WeightedCdf
{
  public:
    WeightedCdf() = default;

    /** Add one sample with weight 1. */
    void add(double value) { add(value, 1.0); }

    /**
     * Add one sample with the given non-negative weight.
     * @throws std::invalid_argument if @p value is non-finite or
     *         @p weight is negative, NaN or infinite.
     */
    void add(double value, double weight);

    /** Number of samples added. */
    size_t size() const { return samples_.size(); }

    /** True if no samples have been added. */
    bool empty() const { return samples_.empty(); }

    /** Sum of all weights. */
    double totalWeight() const { return total_weight_; }

    /**
     * P(X <= x): fraction of total weight at or below x.
     * @throws std::logic_error on an empty CDF.
     */
    double probAtOrBelow(double x) const;

    /**
     * Weighted quantile: smallest sample value v such that
     * P(X <= v) >= q.
     * @throws std::logic_error on an empty CDF.
     * @throws std::invalid_argument unless q is in [0, 1].
     */
    double quantile(double q) const;

    /** Convenience: quantile(0.5). */
    double median() const { return quantile(0.5); }

    /**
     * Weighted mean of the samples.
     * @throws std::logic_error on an empty CDF.
     */
    double mean() const;

    /**
     * Smallest sample.
     * @throws std::logic_error on an empty CDF.
     */
    double min() const;

    /**
     * Largest sample.
     * @throws std::logic_error on an empty CDF.
     */
    double max() const;

    /**
     * Evaluate the CDF on a regular grid of n points spanning
     * [min, max]; returns (x, P(X <= x)) pairs. Useful for rendering
     * the paper's CDF figures.
     * @throws std::logic_error on an empty CDF.
     * @throws std::invalid_argument if n < 2.
     */
    std::vector<std::pair<double, double>> curve(size_t n) const;

  private:
    void ensureSorted() const;

    mutable std::vector<std::pair<double, double>> samples_;
    mutable std::vector<double> cum_weight_; // parallel to samples_
    mutable bool sorted_ = true;
    double total_weight_ = 0.0;
};

} // namespace paichar::stats

#endif // PAICHAR_STATS_CDF_H
