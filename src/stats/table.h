/**
 * @file
 * ASCII table rendering used by the experiment harnesses to print the
 * paper's tables and figure data series.
 */

#ifndef PAICHAR_STATS_TABLE_H
#define PAICHAR_STATS_TABLE_H

#include <string>
#include <vector>

namespace paichar::stats {

/**
 * A simple left/right aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"model", "paper", "measured"});
 *   t.addRow({"ResNet50", "0.25 s", "0.24 s"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table as a multi-line string (trailing newline). */
    std::string render() const;

    /** Number of data rows added (separators excluded). */
    size_t rowCount() const;

  private:
    std::vector<std::string> headers_;
    // A separator is encoded as an empty row vector.
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Format a double with the given precision, e.g. fmt(3.14159, 2).
 *
 * All formatters here allocate to fit: extreme magnitudes (%f of
 * 1e300 is 300+ digits) come back complete, never truncated to some
 * fixed buffer width.
 */
std::string fmt(double v, int precision = 3);

/** Format a fraction as a percentage string, e.g. "61.8%". */
std::string fmtPct(double fraction, int precision = 1);

/** printf %.*g: @p significant digits, any magnitude. */
std::string fmtG(double v, int significant = 3);

/** Human-readable byte count: "1.33 GB", "22 KB", ... */
std::string fmtBytes(double bytes);

/** Human-readable seconds: "0.149 s", "12.3 ms", ... */
std::string fmtSeconds(double seconds);

} // namespace paichar::stats

#endif // PAICHAR_STATS_TABLE_H
